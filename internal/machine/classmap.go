package machine

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ClassMap assigns device classes to node ids. The textual grammar is a
// comma-separated list of range assignments, compact enough for a flag
// (mirroring the fault-plan grammar):
//
//	0-511:cpu,512-575:gpu        // ranges are inclusive
//	5:gpu                        // single node
//
// Unmapped nodes get the cluster's default class (its Machine/Rapl
// pair). A nil or empty map means a homogeneous cluster.
type ClassMap struct {
	// Ranges holds the assignments in parse order; ids never overlap.
	Ranges []ClassRange
}

// ClassRange maps the inclusive node-id interval [Lo, Hi] to a class.
type ClassRange struct {
	Lo, Hi int
	Class  string
}

// ParseClassMap parses the class-map grammar. It rejects malformed
// tokens, inverted or negative ranges, empty class names and
// overlapping assignments; class-name existence is checked later by
// Validate, against the registry actually in effect.
func ParseClassMap(s string) (*ClassMap, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	m := &ClassMap{}
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			return nil, fmt.Errorf("machine: empty class assignment in %q", s)
		}
		r, err := parseClassRange(tok)
		if err != nil {
			return nil, err
		}
		for _, prev := range m.Ranges {
			if r.Lo <= prev.Hi && prev.Lo <= r.Hi {
				return nil, fmt.Errorf("machine: class assignment %q overlaps %d-%d:%s",
					tok, prev.Lo, prev.Hi, prev.Class)
			}
		}
		m.Ranges = append(m.Ranges, r)
	}
	return m, nil
}

// parseClassRange parses one "LO-HI:CLASS" or "ID:CLASS" token.
func parseClassRange(tok string) (ClassRange, error) {
	ids, class, ok := strings.Cut(tok, ":")
	if !ok || class == "" {
		return ClassRange{}, fmt.Errorf("machine: class assignment %q is not ID:CLASS or LO-HI:CLASS", tok)
	}
	lo, hi, isRange := strings.Cut(ids, "-")
	if !isRange {
		hi = lo
	}
	loID, err := strconv.Atoi(lo)
	if err != nil {
		return ClassRange{}, fmt.Errorf("machine: bad node id %q in class assignment %q", lo, tok)
	}
	hiID, err := strconv.Atoi(hi)
	if err != nil {
		return ClassRange{}, fmt.Errorf("machine: bad node id %q in class assignment %q", hi, tok)
	}
	if loID < 0 {
		return ClassRange{}, fmt.Errorf("machine: negative node id %d in class assignment %q", loID, tok)
	}
	if hiID < loID {
		return ClassRange{}, fmt.Errorf("machine: inverted range %d-%d in class assignment %q", loID, hiID, tok)
	}
	return ClassRange{Lo: loID, Hi: hiID, Class: class}, nil
}

// MustParseClassMap is ParseClassMap for literals in tests and
// experiment definitions; it panics on error.
func MustParseClassMap(s string) *ClassMap {
	m, err := ParseClassMap(s)
	if err != nil {
		panic(err)
	}
	return m
}

// Empty reports whether the map assigns no classes (nil-safe).
func (m *ClassMap) Empty() bool { return m == nil || len(m.Ranges) == 0 }

// ClassAt returns the class assigned to node id, or "" when the node
// falls through to the default class (nil-safe).
func (m *ClassMap) ClassAt(id int) string {
	if m == nil {
		return ""
	}
	for _, r := range m.Ranges {
		if id >= r.Lo && id <= r.Hi {
			return r.Class
		}
	}
	return ""
}

// Classes returns the distinct class names the map references, sorted.
func (m *ClassMap) Classes() []string {
	if m.Empty() {
		return nil
	}
	seen := map[string]bool{}
	var names []string
	for _, r := range m.Ranges {
		if !seen[r.Class] {
			seen[r.Class] = true
			names = append(names, r.Class)
		}
	}
	sort.Strings(names)
	return names
}

// Validate checks the map against a cluster of n nodes and a class
// resolver: every id must be in [0, n) and every name must resolve.
// known lists the resolvable names for the error message.
func (m *ClassMap) Validate(n int, resolve func(string) bool, known []string) error {
	if m.Empty() {
		return nil
	}
	for _, r := range m.Ranges {
		if r.Hi >= n {
			return fmt.Errorf("machine: class assignment %d-%d:%s exceeds cluster size %d",
				r.Lo, r.Hi, r.Class, n)
		}
		if resolve != nil && !resolve(r.Class) {
			return fmt.Errorf("machine: unknown class %q (have %s)", r.Class, strings.Join(known, ", "))
		}
	}
	return nil
}

// String renders the map back in the flag grammar; ParseClassMap
// round-trips it.
func (m *ClassMap) String() string {
	if m.Empty() {
		return ""
	}
	parts := make([]string, 0, len(m.Ranges))
	for _, r := range m.Ranges {
		if r.Lo == r.Hi {
			parts = append(parts, fmt.Sprintf("%d:%s", r.Lo, r.Class))
		} else {
			parts = append(parts, fmt.Sprintf("%d-%d:%s", r.Lo, r.Hi, r.Class))
		}
	}
	return strings.Join(parts, ",")
}

// Package rapl simulates Intel's Running Average Power Limit interface as
// exposed on the Theta Cray XC40 nodes the paper evaluates on (via the
// msr-safe kernel module). One Domain models the package power domain of
// a single node.
//
// The simulation reproduces the RAPL properties the paper depends on:
//
//   - a long-term power cap enforced as a moving average over a 1 s
//     window (so brief excursions above the cap are allowed while the
//     window average remains below it);
//   - an optional short-term cap with a ~9.766 ms window that bounds
//     instantaneous draw and, when combined with the long cap, causes
//     RAPL to regulate slightly below the requested limit;
//   - an actuation latency (~10 ms on Theta) between writing a new cap
//     and the cap taking effect;
//   - hardware bounds: caps are clamped to [MinCap, TDP] (98 W and 215 W
//     on Theta's KNL 7230);
//   - monotonically increasing energy counters used for power monitoring.
//
// Time is virtual: callers advance the domain explicitly with the power
// actually drawn, exactly as the machine model integrates phase execution.
package rapl

import (
	"errors"
	"fmt"

	"seesaw/internal/telemetry"
	"seesaw/internal/units"
)

// Config describes the hardware characteristics of a RAPL domain.
type Config struct {
	// MinCap is the lowest supported power cap (98 W on Theta).
	MinCap units.Watts
	// TDP is the thermal design power and highest cap (215 W on Theta).
	TDP units.Watts
	// LongWindow is the averaging window of the long-term cap (1 s).
	LongWindow units.Seconds
	// ShortWindow is the averaging window of the short-term cap
	// (9.766 ms on Theta).
	ShortWindow units.Seconds
	// ActuationLatency is the delay between a cap write and the cap
	// taking effect (~10 ms on Theta).
	ActuationLatency units.Seconds
	// DualCapMargin is the fraction below the requested limit at which
	// RAPL regulates when both long- and short-term caps are set; the
	// paper observes that "RAPL limits the power slightly below the
	// requested power" in that configuration.
	DualCapMargin float64
	// SustainedOnly declares that the domain's consumers only query the
	// sustained enforcement level (SustainedAllowed), never the
	// transient window behaviour (Allowed, WindowAverage). The domain
	// then skips the per-Advance moving-average bookkeeping — unless a
	// telemetry site is attached, which needs the window to report
	// enforcement violations. The co-simulated cluster sets this: the
	// phase execution model integrates whole phases, far longer than
	// the 1 s window, so transient headroom never applies.
	SustainedOnly bool
}

// Theta returns the RAPL configuration of a Theta KNL 7230 node.
func Theta() Config {
	return Config{
		MinCap:           98,
		TDP:              215,
		LongWindow:       1.0,
		ShortWindow:      0.009766,
		ActuationLatency: 0.010,
		DualCapMargin:    0.02,
	}
}

// Scale returns the configuration with its power bounds multiplied by
// f, describing a RAPL sub-domain covering a fraction of a physical
// node (a time-shared placement splits one node into two half-node
// domains, f = 0.5). The averaging windows, actuation latency and
// dual-cap margin are properties of the controller, not of the domain
// size, and stay unchanged.
func (c Config) Scale(f float64) Config {
	if f == 1 {
		return c
	}
	c.MinCap = units.Watts(float64(c.MinCap) * f)
	c.TDP = units.Watts(float64(c.TDP) * f)
	return c
}

// ErrCapOutOfRange is returned when a cap request lies outside the
// hardware-supported range and clamping is disabled.
var ErrCapOutOfRange = errors.New("rapl: requested cap outside supported range")

// pendingCap is a cap write waiting out the actuation latency.
type pendingCap struct {
	value    units.Watts
	applyAt  units.Seconds
	shortCap bool
}

// Domain simulates one RAPL package power domain.
type Domain struct {
	cfg Config

	now    units.Seconds
	energy units.Joules

	longCap  units.Watts // 0 means uncapped
	shortCap units.Watts // 0 means unset

	pending []pendingCap

	// moving-average window bookkeeping for long-term enforcement.
	window    []sample
	windowJ   units.Joules
	windowLen units.Seconds

	capWrites int

	// Telemetry hooks (nil-safe, attached via SetTelemetry). site holds
	// the node's pre-resolved metric children so the per-write hot path
	// never pays a family label lookup.
	site      *telemetry.CapSite
	telName   string
	throttled bool
	violating bool
}

type sample struct {
	dt units.Seconds
	p  units.Watts
}

// NewDomain returns a fresh domain at virtual time 0 with no caps set.
func NewDomain(cfg Config) (*Domain, error) {
	if cfg.MinCap <= 0 || cfg.TDP <= cfg.MinCap {
		return nil, fmt.Errorf("rapl: invalid cap range [%v, %v]", cfg.MinCap, cfg.TDP)
	}
	if cfg.LongWindow <= 0 {
		return nil, fmt.Errorf("rapl: long window must be positive, got %v", cfg.LongWindow)
	}
	return &Domain{cfg: cfg}, nil
}

// MustNewDomain is NewDomain that panics on configuration errors; used
// when the configuration is a compile-time constant such as Theta().
func MustNewDomain(cfg Config) *Domain {
	d, err := NewDomain(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Config returns the domain's hardware configuration.
func (d *Domain) Config() Config { return d.cfg }

// TDP returns the domain's thermal design power without copying the
// whole configuration — the execution model reads it per phase.
func (d *Domain) TDP() units.Watts { return d.cfg.TDP }

// SetTelemetry attaches a telemetry hub: cap writes, throttle
// engagements and enforcement-window violations are reported under the
// given label. Metrics cover every attached domain; structured events
// are emitted only when eventful is true, so a driver can restrict the
// event stream to one representative node per partition. A nil hub
// detaches.
func (d *Domain) SetTelemetry(h *telemetry.Hub, name string, eventful bool) {
	d.site = h.CapSiteFor(name, eventful)
	d.telName = name
}

// Now returns the domain's current virtual time.
func (d *Domain) Now() units.Seconds { return d.now }

// Energy returns the cumulative energy counter, analogous to the
// MSR_PKG_ENERGY_STATUS register.
func (d *Domain) Energy() units.Joules { return d.energy }

// CapWrites returns how many cap write operations were issued; the
// experiment harness uses it to account for actuation overhead.
func (d *Domain) CapWrites() int { return d.capWrites }

// SetLongCap requests a new long-term power cap. The request is clamped
// to the supported range and takes effect after the actuation latency.
// A zero cap removes the limit.
func (d *Domain) SetLongCap(w units.Watts) {
	d.capWrites++
	if w != 0 {
		w = units.ClampWatts(w, d.cfg.MinCap, d.cfg.TDP)
	}
	d.pending = append(d.pending, pendingCap{value: w, applyAt: d.now + d.cfg.ActuationLatency})
	if d.site != nil {
		d.site.CapWritten(float64(d.now), d.telName, float64(w), false)
	}
}

// SetShortCap requests a new short-term power cap with the same clamping
// and latency semantics as SetLongCap. A zero cap removes the limit.
func (d *Domain) SetShortCap(w units.Watts) {
	d.capWrites++
	if w != 0 {
		w = units.ClampWatts(w, d.cfg.MinCap, d.cfg.TDP)
	}
	d.pending = append(d.pending, pendingCap{value: w, applyAt: d.now + d.cfg.ActuationLatency, shortCap: true})
	if d.site != nil {
		d.site.CapWritten(float64(d.now), d.telName, float64(w), true)
	}
}

// LongCap returns the currently effective long-term cap (0 if uncapped).
func (d *Domain) LongCap() units.Watts {
	d.applyPending()
	return d.longCap
}

// ShortCap returns the currently effective short-term cap (0 if unset).
func (d *Domain) ShortCap() units.Watts {
	d.applyPending()
	return d.shortCap
}

// applyPending activates cap writes whose latency has elapsed.
func (d *Domain) applyPending() {
	if len(d.pending) == 0 {
		return
	}
	remaining := d.pending[:0]
	for _, p := range d.pending {
		if p.applyAt <= d.now {
			if p.shortCap {
				d.shortCap = p.value
			} else {
				d.longCap = p.value
			}
		} else {
			remaining = append(remaining, p)
		}
	}
	d.pending = remaining
}

// effectiveTarget returns the power level RAPL regulates to under the
// current caps (the long cap, lowered by the dual-cap margin when a
// short cap is also set), or 0 when uncapped.
func (d *Domain) effectiveTarget() units.Watts {
	if d.longCap <= 0 {
		return 0
	}
	target := d.longCap
	if d.shortCap > 0 {
		target = units.Watts(float64(target) * (1 - d.cfg.DualCapMargin))
	}
	return target
}

// noteThrottle reports engage transitions of demand clipping to the
// telemetry hub (disengagement resets the state silently).
func (d *Domain) noteThrottle(demand, allowed units.Watts) {
	if d.site == nil {
		return
	}
	if allowed < demand {
		if !d.throttled {
			d.throttled = true
			d.site.ThrottleEngaged(float64(d.now), d.telName, float64(demand), float64(allowed))
		}
	} else {
		d.throttled = false
	}
}

// windowAvg returns the average power over the long-term window.
func (d *Domain) windowAvg() units.Watts {
	if d.windowLen <= 0 {
		return 0
	}
	return units.AvgPower(d.windowJ, d.windowLen)
}

// Allowed returns the power the domain permits a workload demanding
// demand Watts to draw at the current instant. Enforcement model:
//
//   - with no caps, draw is bounded only by min(demand, TDP);
//   - with a long cap, draw above the cap is permitted while the
//     window average remains below the cap (transient headroom), and
//     limited to the cap once the window is saturated;
//   - a short cap bounds instantaneous draw directly;
//   - with both caps set, regulation targets cap*(1-DualCapMargin).
func (d *Domain) Allowed(demand units.Watts) units.Watts {
	d.applyPending()
	allowed := demand
	if allowed > d.cfg.TDP {
		allowed = d.cfg.TDP
	}
	if d.longCap > 0 {
		target := d.longCap
		if d.shortCap > 0 {
			target = units.Watts(float64(target) * (1 - d.cfg.DualCapMargin))
		}
		if d.windowAvg() >= target {
			// Window saturated: regulate to the target.
			if allowed > target {
				allowed = target
			}
		} else {
			// Transient headroom: permit short excursions bounded by
			// the short cap (or TDP if none).
			limit := d.cfg.TDP
			if d.shortCap > 0 {
				limit = units.Watts(float64(d.shortCap) * (1 - d.cfg.DualCapMargin))
			}
			if allowed > limit {
				allowed = limit
			}
		}
	} else if d.shortCap > 0 {
		if allowed > d.shortCap {
			allowed = d.shortCap
		}
	}
	if allowed < 0 {
		allowed = 0
	}
	d.noteThrottle(demand, allowed)
	return allowed
}

// SustainedAllowed returns the power a workload demanding demand Watts
// may draw when executing for much longer than the enforcement windows:
// the transient headroom of the moving average is irrelevant at that
// horizon, so caps apply directly (with the dual-cap margin). The
// machine model uses this for phase execution; Allowed models the
// instantaneous (window-dependent) behaviour.
func (d *Domain) SustainedAllowed(demand units.Watts) units.Watts {
	d.applyPending()
	allowed := demand
	if allowed > d.cfg.TDP {
		allowed = d.cfg.TDP
	}
	if d.longCap > 0 {
		target := d.longCap
		if d.shortCap > 0 {
			target = units.Watts(float64(target) * (1 - d.cfg.DualCapMargin))
		}
		if allowed > target {
			allowed = target
		}
	}
	if d.shortCap > 0 && allowed > d.shortCap {
		allowed = d.shortCap
	}
	if allowed < 0 {
		allowed = 0
	}
	d.noteThrottle(demand, allowed)
	return allowed
}

// Grant is SustainedAllowed plus the dual-cap regulation flag in one
// call: the phase execution model needs both per execution, and the
// separate accessors each re-check the pending cap queue. The allowance
// is computed exactly as SustainedAllowed computes it.
func (d *Domain) Grant(demand units.Watts) (allowed units.Watts, dual bool) {
	d.applyPending()
	allowed = demand
	if allowed > d.cfg.TDP {
		allowed = d.cfg.TDP
	}
	if d.longCap > 0 {
		target := d.longCap
		if d.shortCap > 0 {
			target = units.Watts(float64(target) * (1 - d.cfg.DualCapMargin))
			dual = true
		}
		if allowed > target {
			allowed = target
		}
	}
	if d.shortCap > 0 && allowed > d.shortCap {
		allowed = d.shortCap
	}
	if allowed < 0 {
		allowed = 0
	}
	if d.site != nil {
		// noteThrottle is a no-op without a site; guarding here keeps
		// the call out of the uninstrumented hot path.
		d.noteThrottle(demand, allowed)
	}
	return allowed, dual
}

// Advance moves virtual time forward by dt with the domain drawing p
// Watts throughout, updating the energy counter and the enforcement
// window. dt must be non-negative.
func (d *Domain) Advance(dt units.Seconds, p units.Watts) {
	if dt < 0 {
		panic("rapl: negative time advance")
	}
	if dt == 0 {
		return
	}
	d.now += dt
	d.energy += units.Energy(p, dt)
	if d.cfg.SustainedOnly && d.site == nil {
		// Nothing can observe the window: no transient queries by
		// declaration, no violation telemetry without a site. Pending
		// cap writes stay queued — every cap consumer applies them
		// against the advanced clock before reading, so deferring the
		// apply to the next read is indistinguishable.
		return
	}
	d.advanceWindow(dt, p)
}

// advanceWindow is Advance's slow half: the moving-average window fold
// and the violation telemetry. Outlined so Advance itself stays within
// the inlining budget for the sustained-only hot path.
func (d *Domain) advanceWindow(dt units.Seconds, p units.Watts) {
	d.applyPending()
	e := units.Energy(p, dt)

	// Fold the sample into the moving-average window and trim it back
	// to LongWindow seconds. Consumed head samples are compacted with a
	// single copy instead of resliced away: reslicing moves the slice
	// start forward so the next append eventually reallocates, and that
	// churn was the dominant allocation of whole co-simulated episodes.
	d.window = append(d.window, sample{dt: dt, p: p})
	d.windowJ += e
	d.windowLen += dt
	drop := 0
	for d.windowLen > d.cfg.LongWindow && drop < len(d.window) {
		head := d.window[drop]
		excess := d.windowLen - d.cfg.LongWindow
		if head.dt <= excess {
			drop++
			d.windowLen -= head.dt
			d.windowJ -= units.Energy(head.p, head.dt)
		} else {
			d.window[drop].dt -= excess
			d.windowLen -= excess
			d.windowJ -= units.Energy(head.p, excess)
		}
	}
	if drop > 0 {
		n := copy(d.window, d.window[drop:])
		d.window = d.window[:n]
	}

	// Enforcement-window violation telemetry: the window average rising
	// above the effective cap target (beyond a small tolerance) is
	// reported once per excursion.
	if d.site != nil {
		if target := d.effectiveTarget(); target > 0 {
			const tolerance = 1.02
			if avg := d.windowAvg(); float64(avg) > float64(target)*tolerance {
				if !d.violating {
					d.violating = true
					d.site.BudgetViolation(float64(d.now), d.telName, float64(avg), float64(target))
				}
			} else {
				d.violating = false
			}
		}
	}
}

// WindowAverage exposes the long-window average power, mainly for tests
// and monitoring.
func (d *Domain) WindowAverage() units.Watts { return d.windowAvg() }

// Reset returns the domain to its just-constructed state — virtual time
// zero, zero energy, no caps, empty enforcement window — while keeping
// the configuration, the telemetry attachment and the backing arrays,
// so pooled episodes reuse one Domain without reallocating its window
// or pending-write storage. A reset domain is indistinguishable from
// NewDomain's result in every observable.
func (d *Domain) Reset() {
	d.now, d.energy = 0, 0
	d.longCap, d.shortCap = 0, 0
	d.pending = d.pending[:0]
	d.window = d.window[:0]
	d.windowJ, d.windowLen = 0, 0
	d.capWrites = 0
	d.throttled, d.violating = false, false
}

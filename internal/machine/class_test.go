package machine

import (
	"strings"
	"testing"
)

func TestPresetClassesValid(t *testing.T) {
	for _, name := range PresetNames() {
		c, ok := PresetClass(name)
		if !ok {
			t.Fatalf("PresetClass(%q) missing", name)
		}
		if c.Name != name {
			t.Errorf("preset %q carries name %q", name, c.Name)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", name, err)
		}
		if c.Rapl.MinCap >= c.Rapl.TDP {
			t.Errorf("preset %q clamp range [%v, %v] inverted", name, c.Rapl.MinCap, c.Rapl.TDP)
		}
	}
	if _, ok := PresetClass("bogus"); ok {
		t.Error("bogus preset resolved")
	}
}

func TestClassWeightOrdering(t *testing.T) {
	cpu, _ := PresetClass("cpu")
	gpu, _ := PresetClass("gpu")
	lp, _ := PresetClass("lowpower")
	if w := cpu.Weight(); w != 1 {
		t.Errorf("cpu weight = %g, want exactly 1 (it is the reference)", w)
	}
	if wg, wl := gpu.Weight(), lp.Weight(); !(wl < 1 && 1 < wg) {
		t.Errorf("weight ordering lowpower(%g) < cpu(1) < gpu(%g) violated", wl, wg)
	}
}

func TestDefaultClassIsDegenerate(t *testing.T) {
	// The default class must be the homogeneous cluster's exact node:
	// same model, same RAPL config, so the one-class case is
	// byte-identical to the legacy path.
	c := DefaultClass()
	if c.Model != DefaultModel() {
		t.Error("default class model differs from DefaultModel")
	}
	// A phase run through a default-class node matches a plain node.
	ph := Phase{Name: "p", Nominal: 1, Demand: 135, Saturation: 140, Sensitivity: 0.95}
	a := c.NewNode(0, NoiseModel{}, 1)
	b := NewNode(0, c.Rapl, DefaultModel(), NoiseModel{}, 1)
	if da, db := a.PredictDuration(ph, 110), b.PredictDuration(ph, 110); da != db {
		t.Errorf("default-class node predicts %v, plain node %v", da, db)
	}
}

func TestClassAdaptChangesSpeedAndEnvelope(t *testing.T) {
	ph := Phase{Name: "p", Nominal: 1, Demand: 135, Saturation: 140, Sensitivity: 0.95}
	gpu, _ := PresetClass("gpu")
	cpuNode := DefaultClass().NewNode(0, NoiseModel{}, 1)
	gpuNode := gpu.NewNode(0, NoiseModel{}, 1)
	// Unconstrained (own TDP), the GPU is faster than the CPU.
	if dg, dc := gpuNode.PredictDuration(ph, gpu.Rapl.TDP), cpuNode.PredictDuration(ph, 215); dg >= dc {
		t.Errorf("gpu at TDP (%v) not faster than cpu at TDP (%v)", dg, dc)
	}
	// Starved at a CPU-sized cap, the GPU is slower: its envelope is
	// stretched so 110 W sits close to its floor.
	if dg, dc := gpuNode.PredictDuration(ph, 110), cpuNode.PredictDuration(ph, 110); dg <= dc {
		t.Errorf("gpu at 110 W (%v) not slower than cpu at 110 W (%v)", dg, dc)
	}
}

func TestClassNoiseGating(t *testing.T) {
	gpu, _ := PresetClass("gpu")
	// Deterministic run: class noise must NOT activate.
	n := gpu.NewNode(0, NoiseModel{}, 7)
	ph := Phase{Name: "p", Nominal: 1, Demand: 135, Saturation: 140, Sensitivity: 0.95}
	if d1, d2 := n.PredictDuration(ph, 200), gpu.NewNode(0, NoiseModel{}, 8).PredictDuration(ph, 200); d1 != d2 {
		t.Errorf("zero-noise gpu nodes differ across seeds: %v vs %v", d1, d2)
	}
	// Noisy run: the class profile overrides the run-level one.
	a := gpu.NewNode(0, DefaultNoise(), 7)
	b := NewNode(0, gpu.Rapl, gpu.Model, gpu.Noise, 7)
	if da, db := a.PredictDuration(ph, 200), b.PredictDuration(ph, 200); da != db {
		t.Errorf("class-noise override mismatch: %v vs %v", da, db)
	}
}

func TestParseClassMap(t *testing.T) {
	m, err := ParseClassMap("0-511:cpu, 512-575:gpu,600:lowpower")
	if err != nil {
		t.Fatal(err)
	}
	for id, want := range map[int]string{0: "cpu", 511: "cpu", 512: "gpu", 575: "gpu", 600: "lowpower", 576: "", 601: ""} {
		if got := m.ClassAt(id); got != want {
			t.Errorf("ClassAt(%d) = %q, want %q", id, got, want)
		}
	}
	if got := m.Classes(); len(got) != 3 || got[0] != "cpu" || got[1] != "gpu" || got[2] != "lowpower" {
		t.Errorf("Classes() = %v", got)
	}
	// String round-trips through the parser.
	rt, err := ParseClassMap(m.String())
	if err != nil {
		t.Fatalf("round-trip parse: %v", err)
	}
	if rt.String() != m.String() {
		t.Errorf("round trip %q != %q", rt.String(), m.String())
	}
}

func TestParseClassMapErrors(t *testing.T) {
	for _, bad := range []string{
		"0-3",             // no class
		"0-3:",            // empty class
		"x-3:cpu",         // bad lo
		"0-y:cpu",         // bad hi
		"3-0:cpu",         // inverted
		"-1:cpu",          // negative (parses as range with empty lo)
		"0-3:cpu,,4:x",    // empty token
		"0-3:cpu,2:gpu",   // overlap
		"0-3:cpu,3-5:gpu", // overlap at the boundary
	} {
		if _, err := ParseClassMap(bad); err == nil {
			t.Errorf("ParseClassMap(%q) accepted", bad)
		}
	}
	if m, err := ParseClassMap("  "); err != nil || !m.Empty() {
		t.Errorf("blank map: %v, %v", m, err)
	}
}

func TestClassMapValidate(t *testing.T) {
	m := MustParseClassMap("0-3:cpu,4-7:gpu")
	resolve := func(name string) bool { _, ok := PresetClass(name); return ok }
	if err := m.Validate(8, resolve, PresetNames()); err != nil {
		t.Errorf("valid map rejected: %v", err)
	}
	if err := m.Validate(6, resolve, PresetNames()); err == nil {
		t.Error("map exceeding cluster size accepted")
	}
	bad := MustParseClassMap("0-3:warp")
	err := bad.Validate(8, resolve, PresetNames())
	if err == nil {
		t.Fatal("unknown class accepted")
	}
	if !strings.Contains(err.Error(), "warp") || !strings.Contains(err.Error(), "gpu") {
		t.Errorf("unhelpful unknown-class error: %v", err)
	}
	var nilMap *ClassMap
	if !nilMap.Empty() || nilMap.ClassAt(3) != "" || nilMap.String() != "" {
		t.Error("nil map not inert")
	}
	if err := nilMap.Validate(4, nil, nil); err != nil {
		t.Errorf("nil map validate: %v", err)
	}
}

func TestClassValidateRejectsBroken(t *testing.T) {
	c := DefaultClass()
	c.Rapl.MinCap = 0
	if err := c.Validate(); err == nil {
		t.Error("class with broken rapl accepted")
	}
	c = DefaultClass()
	c.Model.SpeedFactor = -1
	if err := c.Validate(); err == nil {
		t.Error("negative speed factor accepted")
	}
}

func TestWeightIsSpeedPerWattSignal(t *testing.T) {
	// The weight must track PredictDuration: a class twice as fast on
	// the probe at its own TDP gets about twice the weight.
	gpu, _ := PresetClass("gpu")
	w := gpu.Weight()
	probe := Phase{Name: "weight-probe", Nominal: 1, Demand: 135, Saturation: 140, Sensitivity: 0.95}
	cn := NewNode(0, DefaultClass().Rapl, DefaultModel(), NoiseModel{}, 1)
	gn := NewNode(0, gpu.Rapl, gpu.Model, NoiseModel{}, 1)
	ratio := float64(cn.PredictDuration(probe, DefaultClass().Rapl.TDP)) / float64(gn.PredictDuration(probe, gpu.Rapl.TDP))
	if diff := w/ratio - 1; diff > 0.01 || diff < -0.01 {
		t.Errorf("weight %g does not track duration ratio %g", w, ratio)
	}
}

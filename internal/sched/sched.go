// Package sched implements the paper's final future-work item:
// integrating SeeSAw with job schedulers and system-wide power
// management (Section VIII). It simulates a machine partition running
// several space-shared in-situ jobs concurrently under one
// machine-level power budget, with a two-level hierarchy:
//
//   - the system level divides the machine budget between jobs using
//     the same energy-proportional rule SeeSAw applies within a job
//     (each job's share follows its energy appetite), re-evaluated at a
//     fixed number of scheduler epochs;
//   - within each job, any core.Policy (typically SeeSAw) divides the
//     job's budget between its simulation and analysis partitions at
//     every synchronization, exactly as in package cosim.
//
// The baseline divides the machine budget between jobs proportionally
// to node count and never moves it.
package sched

import (
	"context"
	"fmt"

	"seesaw/internal/core"
	"seesaw/internal/cosim"
	"seesaw/internal/fault"
	"seesaw/internal/machine"
	"seesaw/internal/policy"
	"seesaw/internal/telemetry"
	"seesaw/internal/units"
	"seesaw/internal/workload"
)

// JobSpec describes one job in the machine partition.
type JobSpec struct {
	// Name identifies the job in results.
	Name string
	// Workload is the job's in-situ workload.
	Workload workload.Spec
	// PolicyName selects the intra-job allocator ("static", "seesaw",
	// "power-aware", "time-aware").
	PolicyName string
	// Window is the intra-job w.
	Window int
	// Faults is an optional fault plan for this job, keyed to the job's
	// own synchronization indices. The scheduler rebases it at each
	// epoch boundary so kills persist across epochs and slow-node
	// excursions clip to their remaining window.
	Faults *fault.Plan
}

// Config describes the machine partition.
type Config struct {
	// Jobs are the concurrent in-situ jobs.
	Jobs []JobSpec
	// MachineBudget is the total power available to all jobs.
	MachineBudget units.Watts
	// MinCap and MaxCap bound per-node caps everywhere.
	MinCap, MaxCap units.Watts
	// Epochs is how many times the system level re-divides the machine
	// budget over the course of the workload (>= 1; 1 = static system
	// level).
	Epochs int
	// SystemAware enables the energy-proportional system level; false
	// keeps the node-proportional static division.
	SystemAware bool
	// Seed drives all noise.
	Seed uint64
	// Noise is the node noise model.
	Noise machine.NoiseModel
	// Telemetry, when non-nil, receives per-job budget-share events at
	// every system-level re-division plus the full intra-job stream of
	// each cosim slice. Nil disables instrumentation at no cost.
	Telemetry *telemetry.Hub
}

// JobResult reports one job's outcome.
type JobResult struct {
	Name string
	// Time is the job's total runtime under its final budget sequence.
	Time units.Seconds
	// Energy is the job's total energy.
	Energy units.Joules
	// Budget is the job's final budget.
	Budget units.Watts
	// AliveNodes is the job's live node count at the end (equal to its
	// configured node count unless a fault plan killed nodes).
	AliveNodes int
}

// Result is the machine-level outcome.
type Result struct {
	Jobs []JobResult
	// Makespan is the slowest job's runtime — the machine-level
	// objective, mirroring SeeSAw's min-max objective one level up.
	Makespan units.Seconds
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if len(c.Jobs) == 0 {
		return fmt.Errorf("sched: at least one job required")
	}
	if c.Epochs < 1 {
		return fmt.Errorf("sched: epochs must be >= 1, got %d", c.Epochs)
	}
	var nodes int
	for i, j := range c.Jobs {
		if err := j.Workload.Validate(); err != nil {
			return fmt.Errorf("sched: job %d (%s): %w", i, j.Name, err)
		}
		if err := j.Faults.Validate(jobNodes(j)); err != nil {
			return fmt.Errorf("sched: job %d (%s): %w", i, j.Name, err)
		}
		nodes += j.Workload.SimNodes + j.Workload.AnaNodes
	}
	if c.MachineBudget < c.MinCap*units.Watts(nodes) {
		return fmt.Errorf("sched: machine budget %v below minimum %v for %d nodes",
			c.MachineBudget, c.MinCap*units.Watts(nodes), nodes)
	}
	return nil
}

// jobNodes returns a job's node count.
func jobNodes(j JobSpec) int { return j.Workload.SimNodes + j.Workload.AnaNodes }

// sliceIntervals returns how many allocator intervals the cosim driver
// executes for spec — its synchronization schedule plus the trailing
// partial interval, mirroring the schedule cosim builds — so fault
// plans can be rebased into the next slice's local sync indices.
func sliceIntervals(spec workload.Spec) int {
	sch := spec.SyncSchedule()
	n := len(sch)
	if n > 0 && sch[n-1] < spec.Steps {
		n++
	}
	return n
}

// Run executes the machine partition: each epoch, every job runs a slice
// of its workload under its current budget; between epochs the system
// level re-divides the machine budget by each job's measured energy
// share (when SystemAware).
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	nJobs := len(cfg.Jobs)
	totalNodes := 0
	for _, j := range cfg.Jobs {
		totalNodes += jobNodes(j)
	}

	// Initial division: proportional to node count (every node gets the
	// same per-node budget — the natural scheduler default).
	budgets := make([]units.Watts, nJobs)
	for i, j := range cfg.Jobs {
		budgets[i] = cfg.MachineBudget * units.Watts(jobNodes(j)) / units.Watts(totalNodes)
		cfg.Telemetry.JobBudget(0, 0, j.Name, float64(budgets[i]),
			float64(budgets[i])/float64(cfg.MachineBudget))
	}

	// Slice each job's steps across the epochs.
	res := &Result{Jobs: make([]JobResult, nJobs)}
	type jobState struct {
		stepsDone int
		time      units.Seconds
		energy    units.Joules
		alive     int
		plan      *fault.Plan // remaining fault plan, rebased per epoch
	}
	states := make([]jobState, nJobs)
	for i, j := range cfg.Jobs {
		states[i].alive = jobNodes(j)
		states[i].plan = j.Faults
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		epochEnergy := make([]units.Joules, nJobs)
		epochTime := make([]units.Seconds, nJobs)

		for i, j := range cfg.Jobs {
			total := j.Workload.Steps
			chunk := total / cfg.Epochs
			if epoch == cfg.Epochs-1 {
				chunk = total - states[i].stepsDone
			}
			if chunk <= 0 {
				continue
			}
			spec := j.Workload
			spec.Steps = chunk
			if epoch > 0 {
				// Only the first slice carries the startup transient.
				spec.NoSetupTransient = true
			}
			cons := core.Constraints{Budget: budgets[i], MinCap: cfg.MinCap, MaxCap: cfg.MaxCap}
			pol, err := newPolicy(j.PolicyName, cons, j.Window)
			if err != nil {
				return nil, err
			}
			out, err := cosim.Run(ctx, cosim.Config{
				Spec:        spec,
				Policy:      pol,
				Constraints: cons,
				CapMode:     cosim.CapLong,
				Seed:        cfg.Seed + uint64(i)*101,
				RunSeed:     cfg.Seed + uint64(i)*101 + uint64(epoch) + 1,
				Noise:       cfg.Noise,
				Faults:      states[i].plan,
				Telemetry:   cfg.Telemetry,
			})
			if err != nil {
				return nil, fmt.Errorf("sched: job %s epoch %d: %w", j.Name, epoch, err)
			}
			states[i].stepsDone += chunk
			states[i].time += out.TotalTime
			states[i].energy += out.TotalEnergy
			states[i].alive = out.AliveSim + out.AliveAna
			// Shift the plan into the next slice's local sync indices:
			// past kills clamp to sync 1 (the node stays dead), running
			// excursions clip to their remaining window.
			states[i].plan = states[i].plan.Rebase(sliceIntervals(spec))
			epochEnergy[i] = out.TotalEnergy
			epochTime[i] = out.TotalTime
		}

		// System-level re-division by energy share — SeeSAw's rule one
		// level up: a job's budget fraction follows its energy fraction.
		if cfg.SystemAware && epoch < cfg.Epochs-1 {
			var totalRate float64
			rates := make([]float64, nJobs)
			for i := range cfg.Jobs {
				if epochTime[i] > 0 {
					rates[i] = float64(epochEnergy[i]) / float64(epochTime[i]) // avg power appetite
				}
				totalRate += rates[i]
			}
			if totalRate > 0 {
				alive := make([]int, nJobs)
				for i := range states {
					alive[i] = states[i].alive
				}
				for i, j := range cfg.Jobs {
					share := units.Watts(float64(cfg.MachineBudget) * rates[i] / totalRate)
					budgets[i] = clampJobBudget(share, cfg, jobNodes(j), alive[i])
				}
				rebalanceToMachineBudget(budgets, cfg, alive)
				for i, j := range cfg.Jobs {
					cfg.Telemetry.JobBudget(float64(states[i].time), epoch+1, j.Name,
						float64(budgets[i]), float64(budgets[i])/float64(cfg.MachineBudget))
				}
			}
		}
	}

	for i, j := range cfg.Jobs {
		res.Jobs[i] = JobResult{Name: j.Name, Time: states[i].time, Energy: states[i].energy,
			Budget: budgets[i], AliveNodes: states[i].alive}
		if states[i].time > res.Makespan {
			res.Makespan = states[i].time
		}
	}
	return res, nil
}

// clampJobBudget bounds a job's budget share: every configured node
// keeps at least MinCap (each cosim slice validates its budget against
// the configured node set, and the intra-job allocator redistributes a
// dead node's floor among survivors), while the ceiling tracks the live
// node count — power granted beyond MaxCap per live node is
// unconsumable. When heavy attrition pushes the live ceiling below the
// configured floor, the floor wins.
func clampJobBudget(share units.Watts, cfg Config, configured, alive int) units.Watts {
	lo := cfg.MinCap * units.Watts(configured)
	hi := cfg.MaxCap * units.Watts(alive)
	if hi < lo {
		hi = lo
	}
	return units.ClampWatts(share, lo, hi)
}

// rebalanceToMachineBudget scales budgets so they sum to the machine
// budget while respecting per-job node minimums.
func rebalanceToMachineBudget(budgets []units.Watts, cfg Config, alive []int) {
	var sum units.Watts
	for _, b := range budgets {
		sum += b
	}
	if sum <= 0 {
		return
	}
	scale := float64(cfg.MachineBudget) / float64(sum)
	for i, j := range cfg.Jobs {
		budgets[i] = clampJobBudget(units.Watts(float64(budgets[i])*scale), cfg, jobNodes(j), alive[i])
	}
}

// newPolicy resolves the name through the process-wide registry; an
// empty name (job file with no policy) means the static baseline, and a
// zero window means the paper's default w=1.
func newPolicy(name string, cons core.Constraints, w int) (core.Policy, error) {
	if w < 1 {
		w = 1
	}
	if name == "" {
		name = "static"
	}
	return policy.New(name, cons, w)
}

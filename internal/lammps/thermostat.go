// Thermostats and run drivers. The paper's benchmark runs NVE inside the
// Verlet loop, but equilibrating the water box before production — and
// the NVT runs common in practice — need temperature control.
package lammps

import (
	"fmt"
	"math"
)

// Thermostat rescales velocities toward a target temperature; Apply is
// called once per Verlet step after the final integration.
type Thermostat interface {
	// Name identifies the thermostat.
	Name() string
	// Apply adjusts the system's velocities in place.
	Apply(s *System)
}

// RescaleThermostat hard-rescales velocities to the target temperature
// every Period steps — the crude but robust equilibration tool.
type RescaleThermostat struct {
	// Target is the desired reduced temperature.
	Target float64
	// Period is how many steps pass between rescales (>= 1).
	Period int

	steps int
}

// NewRescaleThermostat returns a velocity-rescale thermostat.
func NewRescaleThermostat(target float64, period int) (*RescaleThermostat, error) {
	if target <= 0 {
		return nil, fmt.Errorf("lammps: thermostat target %g must be positive", target)
	}
	if period < 1 {
		return nil, fmt.Errorf("lammps: thermostat period %d must be >= 1", period)
	}
	return &RescaleThermostat{Target: target, Period: period}, nil
}

// Name implements Thermostat.
func (*RescaleThermostat) Name() string { return "rescale" }

// Apply implements Thermostat.
func (t *RescaleThermostat) Apply(s *System) {
	t.steps++
	if t.steps%t.Period != 0 {
		return
	}
	cur := s.Temperature()
	if cur <= 0 {
		return
	}
	f := math.Sqrt(t.Target / cur)
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].Scale(f)
	}
}

// BerendsenThermostat couples the system weakly to a heat bath: each
// step velocities are scaled by sqrt(1 + dt/tau (T0/T - 1)), relaxing
// the temperature exponentially with time constant tau without the
// rescale thermostat's hard kicks.
type BerendsenThermostat struct {
	// Target is the desired reduced temperature.
	Target float64
	// Tau is the coupling time constant in reduced time units.
	Tau float64
}

// NewBerendsenThermostat returns a weak-coupling thermostat.
func NewBerendsenThermostat(target, tau float64) (*BerendsenThermostat, error) {
	if target <= 0 {
		return nil, fmt.Errorf("lammps: thermostat target %g must be positive", target)
	}
	if tau <= 0 {
		return nil, fmt.Errorf("lammps: berendsen tau %g must be positive", tau)
	}
	return &BerendsenThermostat{Target: target, Tau: tau}, nil
}

// Name implements Thermostat.
func (*BerendsenThermostat) Name() string { return "berendsen" }

// Apply implements Thermostat.
func (b *BerendsenThermostat) Apply(s *System) {
	cur := s.Temperature()
	if cur <= 0 {
		return
	}
	lambda2 := 1 + s.cfg.Dt/b.Tau*(b.Target/cur-1)
	if lambda2 <= 0 {
		return
	}
	f := math.Sqrt(lambda2)
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].Scale(f)
	}
}

// RunOptions configure the convenience step driver.
type RunOptions struct {
	// Thermostat, when non-nil, is applied after each step (NVT);
	// nil runs NVE.
	Thermostat Thermostat
	// EveryStep, when non-nil, is invoked after each completed step
	// with the step index (1-based), e.g. to capture frames.
	EveryStep func(step int, s *System)
}

// Run advances the system n Verlet steps, rebuilding neighbor lists when
// the skin criterion requires it, and returns the accumulated work.
func (s *System) Run(n int, opt RunOptions) WorkCount {
	var total WorkCount
	for i := 1; i <= n; i++ {
		total.Add(s.InitialIntegrate())
		if s.NeedsRebuild() {
			total.Add(s.BuildNeighbors())
		}
		total.Add(s.ComputeForces())
		total.Add(s.FinalIntegrate())
		if opt.Thermostat != nil {
			opt.Thermostat.Apply(s)
		}
		if opt.EveryStep != nil {
			opt.EveryStep(i, s)
		}
	}
	return total
}

// Equilibrate runs n steps under a rescale thermostat at the
// configuration's temperature, then removes any accumulated net
// momentum — the standard preparation before production analysis runs.
func (s *System) Equilibrate(n int) error {
	th, err := NewRescaleThermostat(s.cfg.Temp, 5)
	if err != nil {
		return err
	}
	s.Run(n, RunOptions{Thermostat: th})
	// Remove thermostat-introduced drift.
	m := s.TotalMomentum().Scale(1 / float64(s.N))
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].Sub(m)
	}
	return nil
}

package core

import (
	"math"
	"testing"

	"seesaw/internal/units"
)

// lcg is a tiny deterministic generator for property-style tests, so
// failures reproduce without a seed dance.
type lcg uint64

func (g *lcg) next() float64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return float64(*g>>11) / float64(1<<53)
}

func (g *lcg) between(lo, hi float64) float64 { return lo + (hi-lo)*g.next() }

// randomCapability draws one of the test's three synthetic classes.
func randomCapability(g *lcg) NodeCapability {
	switch int(g.between(0, 3)) {
	case 0:
		return NodeCapability{Class: "cpu", MinCap: 98, MaxCap: 215, Weight: 1}
	case 1:
		return NodeCapability{Class: "gpu", MinCap: 100, MaxCap: 320, Weight: 2.2}
	default:
		return NodeCapability{Class: "lowpower", MinCap: 40, MaxCap: 90, Weight: 0.6}
	}
}

// randomHeteroNodes builds a measurement set with mixed classes, both
// roles, and a few dead nodes.
func randomHeteroNodes(g *lcg, n int) []NodeMeasure {
	nodes := make([]NodeMeasure, n)
	for i := range nodes {
		role := RoleSimulation
		if i >= n/2 {
			role = RoleAnalysis
		}
		nodes[i] = NodeMeasure{
			NodeID:         i,
			Role:           role,
			Health:         Healthy,
			Time:           units.Seconds(g.between(0.5, 3)),
			BusyTime:       units.Seconds(g.between(0.3, 2.5)),
			Power:          units.Watts(g.between(60, 200)),
			Cap:            units.Watts(g.between(98, 215)),
			NodeCapability: randomCapability(g),
		}
		// Keep at least one live node per partition.
		if g.next() < 0.15 && i != 0 && i != n/2 {
			nodes[i].Health = Dead
			nodes[i].Time, nodes[i].BusyTime, nodes[i].Power = 0, 0, 0
		}
	}
	return nodes
}

// checkHeteroCaps asserts the heterogeneous division invariants: dead
// nodes get zero, every live node lands inside its own clamp range, and
// the total never exceeds max(budget, sum of live floors) — the
// overdraft a hardware floor forces anyway.
func checkHeteroCaps(t *testing.T, nodes []NodeMeasure, caps []units.Watts, c Constraints) {
	t.Helper()
	if len(caps) != len(nodes) {
		t.Fatalf("caps length %d for %d nodes", len(caps), len(nodes))
	}
	var total, floors units.Watts
	for i, n := range nodes {
		if n.Health == Dead {
			if caps[i] != 0 {
				t.Errorf("dead node %d got cap %v", i, caps[i])
			}
			continue
		}
		lo, hi := n.CapRange(c)
		if caps[i] < lo-capConservationEps || caps[i] > hi+capConservationEps {
			t.Errorf("node %d (%s) cap %v outside [%v, %v]", i, n.Class, caps[i], lo, hi)
		}
		total += caps[i]
		floors += lo
	}
	limit := c.Budget
	if floors > limit {
		limit = floors
	}
	if total > limit+capConservationEps {
		t.Errorf("caps total %v exceeds limit %v (budget %v, floors %v)", total, limit, c.Budget, floors)
	}
}

func TestWaterfillConservesAndClamps(t *testing.T) {
	g := lcg(1)
	for trial := 0; trial < 200; trial++ {
		n := 2 + int(g.between(0, 14))
		ms := make([]heteroMember, n)
		var lo, hi units.Watts
		for i := range ms {
			cap := randomCapability(&g)
			ms[i] = heteroMember{idx: i, w: float64(cap.Weight), lo: cap.MinCap, hi: cap.MaxCap}
			lo += cap.MinCap
			hi += cap.MaxCap
		}
		// A feasible total must be conserved exactly; member clamps hold.
		total := units.Watts(g.between(float64(lo), float64(hi)))
		caps := make([]units.Watts, n)
		waterfill(ms, total, caps)
		var sum units.Watts
		for i, m := range ms {
			if caps[i] < m.lo-capConservationEps || caps[i] > m.hi+capConservationEps {
				t.Fatalf("trial %d: member %d cap %v outside [%v, %v]", trial, i, caps[i], m.lo, m.hi)
			}
			sum += caps[i]
		}
		if math.Abs(float64(sum-total)) > float64(capConservationEps)*float64(n) {
			t.Fatalf("trial %d: waterfill sum %v != total %v", trial, sum, total)
		}
		// Determinism: the same inputs give the same division.
		again := make([]units.Watts, n)
		waterfill(ms, total, again)
		for i := range caps {
			if caps[i] != again[i] {
				t.Fatalf("trial %d: waterfill not deterministic at member %d", trial, i)
			}
		}
	}
}

func TestWaterfillEdgeTotals(t *testing.T) {
	ms := []heteroMember{
		{idx: 0, w: 1, lo: 98, hi: 215},
		{idx: 1, w: 2.2, lo: 100, hi: 320},
	}
	// Below the sum of floors every member pins at lo.
	caps := make([]units.Watts, 2)
	waterfill(ms, 150, caps)
	if caps[0] != 98 || caps[1] != 100 {
		t.Errorf("under-floor waterfill = %v, want floors", caps)
	}
	// Above the sum of ceilings every member pins at hi.
	caps = make([]units.Watts, 2)
	waterfill(ms, 1000, caps)
	if caps[0] != 215 || caps[1] != 320 {
		t.Errorf("over-ceiling waterfill = %v, want ceilings", caps)
	}
	// Zero weights split evenly.
	zms := []heteroMember{{idx: 0, lo: 0, hi: 500}, {idx: 1, lo: 0, hi: 500}}
	caps = make([]units.Watts, 2)
	waterfill(zms, 200, caps)
	if caps[0] != 100 || caps[1] != 100 {
		t.Errorf("zero-weight waterfill = %v, want even split", caps)
	}
}

func TestHeteroPartitionCapsProperties(t *testing.T) {
	g := lcg(7)
	for trial := 0; trial < 200; trial++ {
		n := 4 + 2*int(g.between(0, 7))
		nodes := randomHeteroNodes(&g, n)
		c := Constraints{
			Budget: units.Watts(g.between(80, 220)) * units.Watts(n),
			MinCap: 98,
			MaxCap: 215,
		}
		totS := units.Watts(g.between(0.2, 0.8)) * c.Budget
		caps := heteroPartitionCaps(nodes, totS, c.Budget-totS, c)
		checkHeteroCaps(t, nodes, caps, c)
	}
}

// TestHeteroAllocatorsRespectPerNodeClamps drives each allocator over
// several synthetic heterogeneous intervals and asserts every returned
// division satisfies the per-class clamps and the global budget.
func TestHeteroAllocatorsRespectPerNodeClamps(t *testing.T) {
	c := Constraints{Budget: 110 * 8, MinCap: 98, MaxCap: 215}
	mk := func(name string) Policy {
		switch name {
		case "seesaw":
			return MustNewSeeSAw(SeeSAwConfig{Constraints: c, Window: 1})
		case "power-aware":
			return MustNewPowerAware(DefaultPowerAwareConfig(c))
		case "time-aware":
			return MustNewTimeAware(DefaultTimeAwareConfig(c))
		}
		t.Fatalf("unknown policy %s", name)
		return nil
	}
	for _, name := range []string{"seesaw", "power-aware", "time-aware"} {
		t.Run(name, func(t *testing.T) {
			pol := mk(name)
			g := lcg(13)
			// Fixed population with closed-loop caps: as in the drivers,
			// each interval measures under the caps the previous Allocate
			// returned (starting from the even split clamped per node).
			nodes := randomHeteroNodes(&g, 8)
			for i := range nodes {
				lo, hi := nodes[i].CapRange(c)
				nodes[i].Cap = units.ClampWatts(EvenSplit(c, 8), lo, hi)
			}
			for step := 1; step <= 40; step++ {
				for i := range nodes {
					if nodes[i].Health == Dead {
						continue
					}
					nodes[i].Time = units.Seconds(g.between(0.5, 3))
					nodes[i].BusyTime = units.Seconds(g.between(0.3, 2.5))
					p := units.Watts(g.between(0.5, 1)) * nodes[i].Cap
					nodes[i].Power = p
				}
				if step == 20 {
					// Mid-run kill: the dead node's share must flow back to
					// survivors without breaking their clamps.
					nodes[3].Health = Dead
					nodes[3].Time, nodes[3].BusyTime, nodes[3].Power, nodes[3].Cap = 0, 0, 0, 0
				}
				caps := pol.Allocate(step, nodes)
				if caps == nil {
					continue
				}
				checkHeteroCaps(t, nodes, caps, c)
				for i := range nodes {
					if nodes[i].Health != Dead {
						nodes[i].Cap = caps[i]
					}
				}
			}
		})
	}
}

// Registration of the four hand-written core allocators. The policies
// themselves live in internal/core (they are the paper's subject
// matter); this file is their single binding to names.
package policy

import (
	"seesaw/internal/core"
)

func init() {
	Register("static", "even split of the budget once, never moved (the paper's baseline)",
		func(cons core.Constraints, w int) (core.Policy, error) {
			return core.NewStatic(), nil
		})
	Register("seesaw", "energy-feedback balancing of the partitions' sync times (the paper's contribution, Section IV)",
		func(cons core.Constraints, w int) (core.Policy, error) {
			return core.NewSeeSAw(core.SeeSAwConfig{Constraints: cons, Window: w})
		})
	Register("power-aware", "SLURM-style: shift excess power from under-cap nodes to nodes at their cap",
		func(cons core.Constraints, w int) (core.Policy, error) {
			cfg := core.DefaultPowerAwareConfig(cons)
			cfg.Window = w
			return core.NewPowerAware(cfg)
		})
	Register("time-aware", "GEOPM-style power balancer: move power from faster to slower nodes with a decaying step",
		func(cons core.Constraints, w int) (core.Policy, error) {
			return core.NewTimeAware(core.DefaultTimeAwareConfig(cons))
		})
}

package policy

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"seesaw/internal/core"
	"seesaw/internal/units"
)

func testConstraints() core.Constraints {
	return core.Constraints{Budget: 880, MinCap: 98, MaxCap: 215}
}

// stubPolicy is a registrable no-op policy for registry tests. The
// registry is process-global, so test registrations stay visible to
// the rest of the package: the stub behaves like a real policy (its
// Name matches its registered name) to keep every invariant test true.
type stubPolicy struct{ name string }

func (s stubPolicy) Name() string                                 { return s.name }
func (stubPolicy) Allocate(int, []core.NodeMeasure) []units.Watts { return nil }

func stubFactory(name string) Factory {
	return func(core.Constraints, int) (core.Policy, error) { return stubPolicy{name: name}, nil }
}

func TestNamesCoverBuiltins(t *testing.T) {
	have := map[string]bool{}
	for _, n := range Names() {
		have[n] = true
	}
	for _, n := range []string{"static", "seesaw", "power-aware", "time-aware", "bandit"} {
		if !have[n] {
			t.Errorf("builtin %q not registered", n)
		}
	}
	for i := 1; i < len(Names()); i++ {
		if Names()[i-1] >= Names()[i] {
			t.Fatalf("Names() not sorted: %v", Names())
		}
	}
}

func TestComparedExcludesBaselineAndBandit(t *testing.T) {
	for _, n := range Compared() {
		if n == "static" || n == "bandit" {
			t.Errorf("Compared() includes %q; it must list only the paper's compared allocators", n)
		}
		if !Valid(n) {
			t.Errorf("Compared() lists unregistered policy %q", n)
		}
	}
}

func TestNewConstructsEveryRegisteredPolicy(t *testing.T) {
	for _, n := range Names() {
		p, err := New(n, testConstraints(), 1)
		if err != nil {
			t.Errorf("New(%q): %v", n, err)
			continue
		}
		if p.Name() != n {
			t.Errorf("New(%q).Name() = %q", n, p.Name())
		}
	}
}

// TestUnknownPolicyErrorMessage pins the error text every consumer
// (jobfile validation, seesawctl, cmd/insitu) surfaces for a bad
// policy name: it must name the offender and list the registry's
// valid names, so the lists can never drift apart again.
func TestUnknownPolicyErrorMessage(t *testing.T) {
	_, err := New("nope", testConstraints(), 1)
	var unknown *UnknownPolicyError
	if !errors.As(err, &unknown) {
		t.Fatalf("New(unknown) returned %T, want *UnknownPolicyError", err)
	}
	want := fmt.Sprintf("policy: unknown policy %q (valid: %s)", "nope", strings.Join(Names(), ", "))
	if err.Error() != want {
		t.Fatalf("error = %q, want %q", err.Error(), want)
	}
}

// TestWindowValidatedOnce: the registry validates w centrally so no
// factory (and no consumer) needs its own w<=0 check.
func TestWindowValidatedOnce(t *testing.T) {
	for _, w := range []int{0, -3} {
		_, err := New("seesaw", testConstraints(), w)
		if err == nil {
			t.Fatalf("New(w=%d) succeeded", w)
		}
		want := fmt.Sprintf("policy: window must be >= 1, got %d", w)
		if err.Error() != want {
			t.Fatalf("error = %q, want %q", err.Error(), want)
		}
	}
	// The unknown-name check precedes the window check: a consumer
	// probing a name's validity with a junk window still learns the
	// name is the problem.
	var unknown *UnknownPolicyError
	if _, err := New("nope", testConstraints(), 0); !errors.As(err, &unknown) {
		t.Fatalf("New(unknown, w=0) = %v, want UnknownPolicyError", err)
	}
}

func TestRegisterDuplicatePanicsWithBothSites(t *testing.T) {
	reg := func(name string) { Register(name, "registry-test stub", stubFactory(name)) }
	reg("dup-test-policy")
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("duplicate Register did not panic")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, `duplicate registration of "dup-test-policy"`) {
			t.Fatalf("panic %q does not name the duplicate", msg)
		}
		// Both the first and the second registration site must appear,
		// so the collision is debuggable from the panic alone.
		if strings.Count(msg, "registry_test.go:") != 2 {
			t.Fatalf("panic %q does not carry both call sites", msg)
		}
	}()
	reg("dup-test-policy")
}

func TestRegisterRejectsBadInput(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty name":  func() { Register("", "", stubFactory("")) },
		"nil factory": func() { Register("nil-factory-policy", "", nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register with %s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestConcurrentNew exercises the registry's read path under the race
// detector: campaign workers construct policies concurrently.
func TestConcurrentNew(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, n := range Names() {
				if _, err := New(n, testConstraints(), 1); err != nil {
					t.Errorf("New(%q): %v", n, err)
				}
			}
		}()
	}
	wg.Wait()
}

func TestInfosDescribeEveryBuiltin(t *testing.T) {
	infos := Infos()
	if len(infos) != len(Names()) {
		t.Fatalf("Infos() has %d entries, Names() %d", len(infos), len(Names()))
	}
	for _, in := range infos {
		if in.Description == "" {
			t.Errorf("policy %q has no description", in.Name)
		}
	}
}

// TestLookup: the resolved factory builds the same policy New does,
// applies the same window validation, and unknown names carry the
// registry's valid list.
func TestLookup(t *testing.T) {
	fac, err := Lookup("seesaw")
	if err != nil {
		t.Fatal(err)
	}
	got, err := fac(testConstraints(), 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := New("seesaw", testConstraints(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != want.Name() {
		t.Errorf("Lookup factory built %q, New built %q", got.Name(), want.Name())
	}
	if _, err := fac(testConstraints(), 0); err == nil {
		t.Error("factory accepted w=0")
	}
	var unknown *UnknownPolicyError
	if _, err := Lookup("nope"); !errors.As(err, &unknown) {
		t.Errorf("Lookup(nope) = %v, want *UnknownPolicyError", err)
	}
}

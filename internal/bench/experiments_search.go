// The search experiment: batched policy search through the rollout
// environment. Every scenario (a mid-run analysis-node kill, a 2x
// slow-simulation excursion, and the time-shared placement) runs once
// per policy — the four hand-written allocators plus the epsilon-greedy
// bandit that picks among them per window — through rollout.Batch, the
// same path `seesawctl search` takes. The point of the bandit is not a
// better allocator but a demonstration that the rollout substrate
// supports learned selection: on regime-change scenarios it should
// match or beat every fixed policy by switching arms mid-run.
package bench

import (
	"context"
	"fmt"
	"io"

	"seesaw/internal/fault"
	"seesaw/internal/machine"
	"seesaw/internal/rollout"
	"seesaw/internal/trace"
	"seesaw/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "search",
		Title: "Search: batched rollouts rank fixed policies against a per-window bandit across fault and topology scenarios (8 nodes, LAMMPS+MSD)",
		Run:   runSearchExperiment,
	})
}

// searchScenario is one environment configuration every policy rolls
// out in.
type searchScenario struct {
	label    string
	topology string // "" = space-shared
	plan     string // fault plan, "" = none
}

// searchScenarios builds the scenario list relative to the run length
// (mirroring the faults experiment's placement) so shrunken test runs
// keep the shape.
func searchScenarios(spec workload.Spec, steps int) []searchScenario {
	killNode := spec.SimNodes + spec.AnaNodes - 1
	killSync := max(steps/3, 2)
	slowWin := max(steps/3, 2)
	return []searchScenario{
		{label: fmt.Sprintf("kill ana node %d @ sync %d", killNode, killSync),
			plan: fmt.Sprintf("kill:%d@%d", killNode, killSync)},
		{label: fmt.Sprintf("slow sim node 0 2x @ sync %d-%d", killSync, killSync+slowWin-1),
			plan: fmt.Sprintf("slow:0@%dx2+%d", killSync, slowWin)},
		{label: "time-shared placement", topology: "time-shared"},
		{label: fmt.Sprintf("slow sim node 0 2x @ sync %d-%d, DAG placement", killSync, killSync+slowWin-1),
			topology: "dag", plan: fmt.Sprintf("slow:0@%dx2+%d", killSync, slowWin)},
	}
}

func runSearchExperiment(ctx context.Context, o Options, w io.Writer) error {
	steps := o.steps(defaultSteps)
	spec := specAt(8, defaultDim, 1, steps, workload.Tasks("msd"))
	scenarios := searchScenarios(spec, steps)
	fixed := append([]string{"static"}, PolicyNames()...)
	policies := append(append([]string(nil), fixed...), "bandit")

	var points []rollout.Point
	for si, sc := range scenarios {
		plan, err := fault.Parse(sc.plan)
		if err != nil {
			return fmt.Errorf("bench: search scenario %q: %w", sc.label, err)
		}
		for _, p := range policies {
			points = append(points, rollout.Point{
				Key: fmt.Sprintf("s%d/%s", si, p),
				Spec: rollout.Spec{
					Workload:   spec,
					Topology:   sc.topology,
					CapPerNode: defaultCap,
					Seed:       o.BaseSeed + 71,
					RunSeed:    o.BaseSeed + 72,
					Noise:      machine.DefaultNoise(),
					Faults:     plan,
					Telemetry:  o.Telemetry,
				},
				Policy: p,
				Window: 1,
			})
		}
	}

	outs, err := rollout.Batch(ctx, points, rollout.Options{Name: "search", Jobs: o.Jobs, Telemetry: o.Telemetry})
	if err != nil {
		return err
	}

	// outs is in point order: len(policies) rollouts per scenario.
	banditWins := 0
	var winLabels []string
	for si, sc := range scenarios {
		row := outs[si*len(policies) : (si+1)*len(policies)]
		bestFixed := -1.0
		for i, p := range policies {
			if p == "bandit" {
				continue
			}
			t := float64(row[i].Result.TotalTime)
			if bestFixed < 0 || t < bestFixed {
				bestFixed = t
			}
		}
		tbl := trace.NewTable(fmt.Sprintf("Search (%s)", sc.label),
			"policy", "total (s)", "vs best fixed", "energy (kJ)")
		for i, p := range policies {
			res := row[i].Result
			t := float64(res.TotalTime)
			tbl.AddRow(p,
				fmt.Sprintf("%.1f", t),
				fmt.Sprintf("%+.2f%%", (t-bestFixed)/bestFixed*100),
				fmt.Sprintf("%.1f", float64(res.TotalEnergy)/1000))
		}
		if err := tbl.Render(w); err != nil {
			return err
		}
		if t := float64(row[len(policies)-1].Result.TotalTime); t < bestFixed {
			banditWins++
			winLabels = append(winLabels, sc.label)
		}
	}

	if banditWins > 0 {
		_, err = fmt.Fprintf(w, "The bandit beats every fixed policy on %d of %d scenarios (%s): per-window arm selection adapts where any single hand-written policy is mis-matched to part of the run.\n\n",
			banditWins, len(scenarios), join(winLabels))
	} else {
		_, err = fmt.Fprintf(w, "The bandit beats every fixed policy on 0 of %d scenarios at this run length; longer episodes give its audition phase room to amortize.\n\n",
			len(scenarios))
	}
	return err
}

// join renders the winning-scenario labels as a compact list.
func join(labels []string) string {
	s := ""
	for i, l := range labels {
		if i > 0 {
			s += "; "
		}
		s += l
	}
	return s
}

package cosim

import (
	"context"
	"strings"
	"testing"

	"seesaw/internal/core"
	"seesaw/internal/fault"
	"seesaw/internal/machine"
	"seesaw/internal/telemetry"
	"seesaw/internal/units"
)

func mustPlan(t *testing.T, s string) *fault.Plan {
	t.Helper()
	p, err := fault.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFaultPlanValidatedAtRun(t *testing.T) {
	// Killing every simulation node must be rejected up front.
	_, err := Run(context.Background(), Config{Spec: smallSpec(), Constraints: smallCons(), CapMode: CapLong,
		Faults: mustPlan(t, "kill:0@1,kill:1@1,kill:2@1,kill:3@1")})
	if err == nil || !strings.Contains(err.Error(), "kills all") {
		t.Errorf("err = %v, want partition-wipeout rejection", err)
	}
}

func TestFaultKillRebalance(t *testing.T) {
	hub := telemetry.New(telemetry.Options{})
	cons := smallCons()
	ss := core.MustNewSeeSAw(core.SeeSAwConfig{Constraints: cons, Window: 1})
	res, err := Run(context.Background(), Config{Spec: smallSpec(), Policy: ss, Constraints: cons,
		CapMode: CapLong, Seed: 3, Noise: machine.DefaultNoise(),
		Faults: mustPlan(t, "kill:1@10"), Telemetry: hub})
	if err != nil {
		t.Fatal(err)
	}
	if res.AliveSim != 3 || res.AliveAna != 4 {
		t.Errorf("alive = %d/%d, want 3/4", res.AliveSim, res.AliveAna)
	}
	if len(res.FaultLog) != 1 {
		t.Fatalf("FaultLog = %v, want one kill", res.FaultLog)
	}
	tr := res.FaultLog[0]
	if tr.NodeID != 1 || tr.To != core.Dead || tr.Sync != 10 {
		t.Errorf("transition = %+v", tr)
	}
	// The dead node's budget share went back to the live nodes: live
	// final caps conserve the full budget within clamp epsilon.
	var live units.Watts
	for i, c := range res.FinalCaps {
		if i == 1 {
			continue
		}
		if c < cons.MinCap || c > cons.MaxCap {
			t.Errorf("live cap %d = %v outside range", i, c)
		}
		live += c
	}
	if !units.NearlyEqual(float64(live), float64(cons.Budget), 1e-6) {
		t.Errorf("live caps sum to %v, want budget %v", live, cons.Budget)
	}
	// Telemetry saw the kill and subsequent policy decisions.
	var sawKill, sawDecision bool
	for _, e := range hub.Events() {
		switch e.Kind() {
		case "NodeKilled":
			sawKill = true
		case "PolicyDecision":
			sawDecision = true
		}
	}
	if !sawKill || !sawDecision {
		t.Errorf("events missing: NodeKilled=%v PolicyDecision=%v", sawKill, sawDecision)
	}
}

// TestFaultReconvergence is the headline property: after a mid-run kill
// shifts the dead node's work onto the survivors, SeeSAw re-converges
// the two partitions' sync times while the static baseline stays
// imbalanced.
func TestFaultReconvergence(t *testing.T) {
	spec := smallSpec()
	spec.Steps = 60
	cons := smallCons()
	// The msd workload is analysis-dominant at the even split, so the
	// kill lands in the analysis partition: the survivors inherit 4/3 of
	// the work and the imbalance widens unless power follows it.
	run := func(p core.Policy) *Result {
		res, err := Run(context.Background(), Config{Spec: spec, Policy: p, Constraints: cons,
			CapMode: CapLong, Seed: 11, RunSeed: 12, Noise: machine.DefaultNoise(),
			Faults: mustPlan(t, "kill:7@20")})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	static := run(nil)
	seesaw := run(core.MustNewSeeSAw(core.SeeSAwConfig{Constraints: cons, Window: 1}))

	// Post-kill steady state: the last third of the run.
	from := 41
	staticSlack := static.SyncLog.MeanSlackFrom(from)
	seesawSlack := seesaw.SyncLog.MeanSlackFrom(from)
	if staticSlack <= 0.05 {
		t.Fatalf("static post-kill slack %v too small: kill did not unbalance the run", staticSlack)
	}
	if seesawSlack >= staticSlack*0.75 {
		t.Errorf("seesaw post-kill slack %v did not re-converge below static %v", seesawSlack, staticSlack)
	}
	// And the rebalanced run finishes the job faster.
	if seesaw.TotalTime >= static.TotalTime {
		t.Errorf("seesaw %v not faster than static %v after the kill", seesaw.TotalTime, static.TotalTime)
	}
}

func TestFaultSlowExcursion(t *testing.T) {
	spec := smallSpec()
	spec.Steps = 40
	res, err := Run(context.Background(), Config{Spec: spec, Constraints: smallCons(), CapMode: CapLong,
		Seed: 5, Faults: mustPlan(t, "slow:0@10x2+10")})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FaultLog) != 2 {
		t.Fatalf("FaultLog = %v, want degrade+recover", res.FaultLog)
	}
	if res.FaultLog[0].To != core.Degraded || res.FaultLog[0].Factor != 2 {
		t.Errorf("first transition = %+v", res.FaultLog[0])
	}
	if res.FaultLog[1].To != core.Healthy {
		t.Errorf("second transition = %+v", res.FaultLog[1])
	}
	if res.AliveSim != 4 || res.AliveAna != 4 {
		t.Errorf("alive = %d/%d, excursion must not kill", res.AliveSim, res.AliveAna)
	}
	// The excursion slows the run relative to a fault-free twin.
	clean, err := Run(context.Background(), Config{Spec: spec, Constraints: smallCons(), CapMode: CapLong, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= clean.TotalTime {
		t.Errorf("excursion run %v not slower than clean %v", res.TotalTime, clean.TotalTime)
	}
}

func TestFaultDeterminism(t *testing.T) {
	cfg := Config{Spec: smallSpec(), Constraints: smallCons(), CapMode: CapLong,
		Seed: 7, RunSeed: 8, Noise: machine.DefaultNoise(),
		Policy: core.MustNewSeeSAw(core.SeeSAwConfig{Constraints: smallCons(), Window: 1}),
		Faults: mustPlan(t, "kill:6@5,slow:2@3x1.5+4")}
	a, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Policy = core.MustNewSeeSAw(core.SeeSAwConfig{Constraints: smallCons(), Window: 1})
	b, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalTime != b.TotalTime || a.TotalEnergy != b.TotalEnergy || len(a.FaultLog) != len(b.FaultLog) {
		t.Errorf("faulted runs diverged: %v/%v vs %v/%v", a.TotalTime, a.TotalEnergy, b.TotalTime, b.TotalEnergy)
	}
}

func TestNilPlanMatchesNoPlan(t *testing.T) {
	base := Config{Spec: smallSpec(), Constraints: smallCons(), CapMode: CapLong,
		Seed: 9, Noise: machine.DefaultNoise()}
	a, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	base.Faults = &fault.Plan{}
	b, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalTime != b.TotalTime || a.TotalEnergy != b.TotalEnergy {
		t.Errorf("empty plan changed the run: %v vs %v", a.TotalTime, b.TotalTime)
	}
}

func TestDeadAnalysisNodeRebalance(t *testing.T) {
	// Killing an analysis node exercises the other partition's work
	// rescale path and the allocators' ana-side redistribution.
	cons := smallCons()
	ss := core.MustNewSeeSAw(core.SeeSAwConfig{Constraints: cons, Window: 1})
	res, err := Run(context.Background(), Config{Spec: smallSpec(), Policy: ss, Constraints: cons,
		CapMode: CapLong, Seed: 13, Noise: machine.DefaultNoise(), Faults: mustPlan(t, "kill:6@8")})
	if err != nil {
		t.Fatal(err)
	}
	if res.AliveSim != 4 || res.AliveAna != 3 {
		t.Errorf("alive = %d/%d, want 4/3", res.AliveSim, res.AliveAna)
	}
	var live units.Watts
	for i, c := range res.FinalCaps {
		if i == 6 {
			continue
		}
		live += c
	}
	if !units.NearlyEqual(float64(live), float64(cons.Budget), 1e-6) {
		t.Errorf("live caps sum to %v, want budget %v", live, cons.Budget)
	}
}

// Package fault defines deterministic, seedable fault-injection plans
// for the simulated platform. A plan is a set of events keyed to the
// virtual synchronization schedule — "kill node n at sync k", "slow
// node n by a factor f over a window of syncs" — consumed by the
// drivers (cosim, insitu) through the cluster layer. Plans are plain
// data: the same plan against the same seeds yields bit-identical
// runs, so faulty campaigns stay reproducible.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"seesaw/internal/rng"
)

// Kind discriminates the supported perturbations.
type Kind int

const (
	// Kill removes the node permanently: it stops executing work,
	// draws no power, and is excluded from allocation.
	Kill Kind = iota
	// Slow multiplies the node's phase durations by Factor for Window
	// synchronizations (a transient excursion: thermal throttling, a
	// noisy neighbour, a failing fan).
	Slow
)

// String names the kind as it appears in the CLI grammar.
func (k Kind) String() string {
	switch k {
	case Kill:
		return "kill"
	case Slow:
		return "slow"
	default:
		return fmt.Sprintf("invalid-kind(%d)", int(k))
	}
}

// Event is one planned perturbation. Sync indices are 1-based and
// count the job's synchronization points in virtual-time order, so an
// event at Sync k fires before the interval that ends at the k-th
// synchronization executes.
type Event struct {
	Kind Kind
	// Node is the stable node id (cosim node index / insitu world
	// rank) the event targets.
	Node int
	// Sync is the 1-based synchronization index at which the event
	// fires.
	Sync int
	// Factor (Slow only) multiplies phase durations; must be > 0.
	// Factors above 1 slow the node down.
	Factor float64
	// Window (Slow only) is how many synchronizations the excursion
	// lasts; the node recovers before sync Sync+Window executes.
	Window int
}

// String renders the event in the Parse grammar.
func (e Event) String() string {
	switch e.Kind {
	case Kill:
		return fmt.Sprintf("kill:%d@%d", e.Node, e.Sync)
	case Slow:
		return fmt.Sprintf("slow:%d@%dx%g+%d", e.Node, e.Sync, e.Factor, e.Window)
	default:
		return fmt.Sprintf("invalid:%d@%d", e.Node, e.Sync)
	}
}

// Plan is a deterministic fault schedule. The zero value and nil are
// both valid empty plans; all query methods are nil-safe so drivers
// can thread an optional *Plan without guarding every call site.
type Plan struct {
	Events []Event
}

// Empty reports whether the plan schedules no events.
func (p *Plan) Empty() bool { return p == nil || len(p.Events) == 0 }

// Validate checks every event against a platform of n nodes: targets
// in [0, n), sync >= 1, slow factors > 0 with windows >= 1, and at
// most one kill per node.
func (p *Plan) Validate(n int) error {
	if p.Empty() {
		return nil
	}
	killed := make(map[int]bool)
	for i, e := range p.Events {
		if e.Node < 0 || e.Node >= n {
			return fmt.Errorf("fault: event %d (%s) targets node %d outside the %d-node platform", i, e, e.Node, n)
		}
		if e.Sync < 1 {
			return fmt.Errorf("fault: event %d (%s) has sync %d; syncs are 1-based", i, e, e.Sync)
		}
		switch e.Kind {
		case Kill:
			if killed[e.Node] {
				return fmt.Errorf("fault: event %d (%s) kills node %d twice", i, e, e.Node)
			}
			killed[e.Node] = true
		case Slow:
			if e.Factor <= 0 {
				return fmt.Errorf("fault: event %d (%s) has non-positive factor %g", i, e, e.Factor)
			}
			if e.Window < 1 {
				return fmt.Errorf("fault: event %d (%s) has window %d; must cover at least one sync", i, e, e.Window)
			}
		default:
			return fmt.Errorf("fault: event %d has invalid kind %d", i, int(e.Kind))
		}
	}
	return nil
}

// KillSync returns the earliest sync at which the plan kills node, or
// 0 if it never does.
func (p *Plan) KillSync(node int) int {
	if p.Empty() {
		return 0
	}
	at := 0
	for _, e := range p.Events {
		if e.Kind == Kill && e.Node == node && (at == 0 || e.Sync < at) {
			at = e.Sync
		}
	}
	return at
}

// KilledBy reports whether the plan has killed node by sync (that is,
// a kill event with Sync <= sync exists).
func (p *Plan) KilledBy(node, sync int) bool {
	at := p.KillSync(node)
	return at != 0 && at <= sync
}

// SlowFactor returns the combined duration multiplier active on node
// at the given sync: the product of every Slow event whose window
// [Sync, Sync+Window) covers it, or exactly 1 when none does.
func (p *Plan) SlowFactor(node, sync int) float64 {
	if p.Empty() {
		return 1
	}
	f := 1.0
	for _, e := range p.Events {
		if e.Kind == Slow && e.Node == node && sync >= e.Sync && sync < e.Sync+e.Window {
			f *= e.Factor
		}
	}
	return f
}

// Kills returns the node ids the plan ever kills, ascending.
func (p *Plan) Kills() []int {
	if p.Empty() {
		return nil
	}
	var ids []int
	seen := make(map[int]bool)
	for _, e := range p.Events {
		if e.Kind == Kill && !seen[e.Node] {
			seen[e.Node] = true
			ids = append(ids, e.Node)
		}
	}
	sort.Ints(ids)
	return ids
}

// Rebase shifts every event's sync by -offset, for drivers that slice
// one job into epochs with per-epoch sync numbering (sched). Kills
// whose sync has already passed are clamped to sync 1 so the node
// stays dead in later epochs; slow events are clipped to their
// remaining window and dropped once expired. Returns nil when nothing
// remains.
func (p *Plan) Rebase(offset int) *Plan {
	if p.Empty() {
		return nil
	}
	var out []Event
	for _, e := range p.Events {
		s := e.Sync - offset
		switch e.Kind {
		case Kill:
			if s < 1 {
				s = 1
			}
			out = append(out, Event{Kind: Kill, Node: e.Node, Sync: s})
		case Slow:
			end := s + e.Window // exclusive
			if end <= 1 {
				continue // the excursion ended in a previous epoch
			}
			if s < 1 {
				s = 1
			}
			out = append(out, Event{Kind: Slow, Node: e.Node, Sync: s, Factor: e.Factor, Window: end - s})
		}
	}
	if len(out) == 0 {
		return nil
	}
	return &Plan{Events: out}
}

// String renders the plan in the Parse grammar (comma-separated
// events, in plan order). The empty plan renders as "".
func (p *Plan) String() string {
	if p.Empty() {
		return ""
	}
	parts := make([]string, len(p.Events))
	for i, e := range p.Events {
		parts[i] = e.String()
	}
	return strings.Join(parts, ",")
}

// Parse reads a comma-separated plan in the CLI grammar:
//
//	kill:NODE@SYNC            kill NODE at synchronization SYNC
//	slow:NODE@SYNC            2x slowdown for 10 syncs (defaults)
//	slow:NODE@SYNCxFACTOR     FACTOR slowdown for 10 syncs
//	slow:NODE@SYNCxFACTOR+WIN FACTOR slowdown for WIN syncs
//
// e.g. "kill:5@20,slow:3@10x2.0+15". An empty string parses to nil.
func Parse(s string) (*Plan, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var p Plan
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		e, err := parseEvent(tok)
		if err != nil {
			return nil, err
		}
		p.Events = append(p.Events, e)
	}
	if len(p.Events) == 0 {
		return nil, nil
	}
	return &p, nil
}

const (
	// DefaultSlowFactor is the excursion multiplier when the spec
	// omits one (the "2x slow node" of the experiments).
	DefaultSlowFactor = 2.0
	// DefaultSlowWindow is the excursion length in syncs when the
	// spec omits one.
	DefaultSlowWindow = 10
)

func parseEvent(tok string) (Event, error) {
	kind, rest, ok := strings.Cut(tok, ":")
	if !ok {
		return Event{}, fmt.Errorf("fault: %q: want kill:NODE@SYNC or slow:NODE@SYNC[xFACTOR[+WINDOW]]", tok)
	}
	nodeStr, at, ok := strings.Cut(rest, "@")
	if !ok {
		return Event{}, fmt.Errorf("fault: %q: missing @SYNC", tok)
	}
	node, err := strconv.Atoi(nodeStr)
	if err != nil {
		return Event{}, fmt.Errorf("fault: %q: bad node %q: %v", tok, nodeStr, err)
	}
	switch kind {
	case "kill":
		sync, err := strconv.Atoi(at)
		if err != nil {
			return Event{}, fmt.Errorf("fault: %q: bad sync %q: %v", tok, at, err)
		}
		return Event{Kind: Kill, Node: node, Sync: sync}, nil
	case "slow":
		e := Event{Kind: Slow, Node: node, Factor: DefaultSlowFactor, Window: DefaultSlowWindow}
		syncStr, factorPart, hasFactor := strings.Cut(at, "x")
		if e.Sync, err = strconv.Atoi(syncStr); err != nil {
			return Event{}, fmt.Errorf("fault: %q: bad sync %q: %v", tok, syncStr, err)
		}
		if hasFactor {
			factorStr, winStr, hasWin := strings.Cut(factorPart, "+")
			if e.Factor, err = strconv.ParseFloat(factorStr, 64); err != nil {
				return Event{}, fmt.Errorf("fault: %q: bad factor %q: %v", tok, factorStr, err)
			}
			if hasWin {
				if e.Window, err = strconv.Atoi(winStr); err != nil {
					return Event{}, fmt.Errorf("fault: %q: bad window %q: %v", tok, winStr, err)
				}
			}
		}
		return e, nil
	default:
		return Event{}, fmt.Errorf("fault: %q: unknown kind %q (want kill or slow)", tok, kind)
	}
}

// Random draws a seeded plan over a platform of n nodes and a job of
// `syncs` synchronizations: `kills` distinct kill events and `slows`
// excursions (factor in [1.5, 3.0), window up to a quarter of the
// job). Identical arguments yield identical plans.
func Random(seed uint64, n, syncs, kills, slows int) *Plan {
	if n <= 0 || syncs <= 0 || kills+slows <= 0 {
		return nil
	}
	s := rng.Derive(seed, "fault-plan")
	var p Plan
	chosen := make(map[int]bool)
	for i := 0; i < kills && len(chosen) < n; i++ {
		node := s.Intn(n)
		for chosen[node] {
			node = (node + 1) % n
		}
		chosen[node] = true
		p.Events = append(p.Events, Event{Kind: Kill, Node: node, Sync: 1 + s.Intn(syncs)})
	}
	for i := 0; i < slows; i++ {
		win := 1 + s.Intn(max(1, syncs/4))
		p.Events = append(p.Events, Event{
			Kind:   Slow,
			Node:   s.Intn(n),
			Sync:   1 + s.Intn(syncs),
			Factor: 1.5 + 1.5*s.Float64(),
			Window: win,
		})
	}
	return &p
}

// KilledError is the error an insitu job unwinds with when a planned
// kill fires: the killed rank poisons the mpi run context so every
// blocked collective returns, mirroring a real MPI job abort.
type KilledError struct {
	Node int
	Sync int
}

func (e *KilledError) Error() string {
	return fmt.Sprintf("fault: node %d killed at sync %d; job aborted", e.Node, e.Sync)
}

# Tier-1 gate: everything `make check` runs must stay green.
GO ?= go

.PHONY: all build check fmt vet staticcheck test race bench bench-scale bench-scale-profile bench-scale-smoke bench-rollouts bench-rollouts-profile memo-golden-smoke lane-race-smoke clean

all: build

build:
	$(GO) build ./...

# check is the tier-1 gate: formatting, vet, staticcheck (when
# installed), the full suite under the race detector (the telemetry
# hub and the insitu driver are concurrent by design), and a single-
# iteration pass over the scale benchmarks so they cannot rot.
check: fmt vet staticcheck race bench-scale-smoke memo-golden-smoke lane-race-smoke

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# staticcheck runs when the binary is on PATH and is skipped (with a
# note) otherwise, so `make check` works in offline environments; CI
# installs it and gets the full gate.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# bench-scale measures the substrate at 256/1024/4096 ranks: the mpi
# collective/mailbox microbenchmarks, the whole-job insitu macro
# benchmark, and the telemetry hot paths under a GOMAXPROCS 1/4/8
# scaling study (-cpu re-runs each benchmark at every parallelism
# level). Results feed BENCH_scale.json / BENCH_scale2.json (see
# EXPERIMENTS.md).
bench-scale:
	$(GO) test -run xxx -bench . -benchtime 2s ./internal/mpi/
	$(GO) test -run xxx -bench BenchmarkInsituScale -benchtime 1x -count 3 ./internal/insitu/
	$(GO) test -run xxx -bench BenchmarkTopologies -benchtime 1x -count 3 ./internal/workflow/
	$(GO) test -run xxx -bench BenchmarkRollouts -benchtime 2s ./internal/rollout/
	$(GO) test -run xxx -bench BenchmarkHetero -benchtime 1x -count 3 ./internal/cosim/
	$(GO) test -run xxx -bench . -benchtime 1s -cpu 1,4,8 ./internal/telemetry/

# bench-scale-profile repeats the measurement run with CPU and heap
# profiles written per package (insitu.cpu.out etc.); CI uploads them
# as artifacts so a regression can be diagnosed from the run itself.
bench-scale-profile:
	$(GO) test -run xxx -bench . -benchtime 1s \
		-cpuprofile mpi.cpu.out -memprofile mpi.mem.out ./internal/mpi/
	$(GO) test -run xxx -bench BenchmarkInsituScale -benchtime 1x \
		-cpuprofile insitu.cpu.out -memprofile insitu.mem.out ./internal/insitu/
	$(GO) test -run xxx -bench BenchmarkTopologies -benchtime 1x \
		-cpuprofile workflow.cpu.out -memprofile workflow.mem.out ./internal/workflow/
	$(GO) test -run xxx -bench BenchmarkRollouts -benchtime 1x \
		-cpuprofile rollout.cpu.out -memprofile rollout.mem.out ./internal/rollout/
	$(GO) test -run xxx -bench . -benchtime 0.3s -cpu 4 \
		-cpuprofile telemetry.cpu.out -memprofile telemetry.mem.out ./internal/telemetry/

# bench-scale-smoke runs every scale benchmark for one iteration — a
# correctness gate (part of `make check`), not a measurement. CI runs
# it at GOMAXPROCS=1 (via `make check`) and again at GOMAXPROCS=4 so
# the striped/lock-free paths see real parallelism.
bench-scale-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x ./internal/mpi/
	$(GO) test -run xxx -bench 'BenchmarkInsituScale/nodes=256' -benchtime 1x ./internal/insitu/
	$(GO) test -run xxx -bench 'BenchmarkTopologies/nodes=256' -benchtime 1x ./internal/workflow/
	$(GO) test -run xxx -bench 'BenchmarkRollouts/nodes=256' -benchtime 1x ./internal/rollout/
	$(GO) test -run xxx -bench 'BenchmarkHetero/nodes=256' -benchtime 1x ./internal/cosim/
	$(GO) test -run xxx -bench . -benchtime 1x ./internal/telemetry/

# bench-rollouts measures the policy-search fast path in isolation:
# pooled-Env episode throughput at 256/1024/4096 nodes, the unpooled
# fresh-Env baseline, and the batched grid sweep at jobs=1/4/8. The
# batch benchmark re-runs at GOMAXPROCS 1/4/8 (-cpu) so jobs>1 rows
# measure real parallelism; jobs>1 under one core skips with a note.
# Interleaved A/B medians of these runs feed BENCH_rollouts2.json and
# BENCH_rollouts3.json (see EXPERIMENTS.md).
bench-rollouts:
	$(GO) test -run xxx -bench 'BenchmarkRollouts$$|BenchmarkRolloutsFresh$$' -benchtime 2s ./internal/rollout/
	$(GO) test -run xxx -bench BenchmarkRolloutsBatch -benchtime 2s -cpu 1,4,8 ./internal/rollout/

# bench-rollouts-profile repeats the pooled run with CPU and heap
# profiles (rollout.cpu.out / rollout.mem.out); CI uploads them as
# artifacts so a throughput regression can be diagnosed from the run.
bench-rollouts-profile:
	$(GO) test -run xxx -bench '^BenchmarkRollouts$$' -benchtime 1x -count 5 \
		-cpuprofile rollout.cpu.out -memprofile rollout.mem.out ./internal/rollout/

# memo-golden-smoke pins the noise-trace memoization end to end at the
# CLI: the same small search grid with memoization on and with
# -no-noise-memo must print byte-identical reports (replay is
# byte-identical to live draws by construction).
memo-golden-smoke:
	@tmp="$${TMPDIR:-/tmp}"; \
	$(GO) run ./cmd/seesawctl search -nodes 8 -steps 20 -budgets 105,110 \
		-policies seesaw,time-aware > "$$tmp/seesaw-memo-on.txt" && \
	$(GO) run ./cmd/seesawctl search -nodes 8 -steps 20 -budgets 105,110 \
		-policies seesaw,time-aware -no-noise-memo > "$$tmp/seesaw-memo-off.txt" && \
	if ! cmp -s "$$tmp/seesaw-memo-on.txt" "$$tmp/seesaw-memo-off.txt"; then \
		echo "memo-on vs -no-noise-memo reports diverge:"; \
		diff "$$tmp/seesaw-memo-on.txt" "$$tmp/seesaw-memo-off.txt"; exit 1; \
	fi; \
	rm -f "$$tmp/seesaw-memo-on.txt" "$$tmp/seesaw-memo-off.txt"; \
	echo "memo golden smoke ok: memoized and live reports are byte-identical"

# lane-race-smoke runs one 256-node lane-batched grid sweep under the
# race detector: the lane-stepped executor, the shared trace cache and
# the campaign pool all on the hot path at real concurrency.
lane-race-smoke:
	$(GO) test -race -run xxx -bench 'BenchmarkRolloutsBatch/nodes=256/jobs=4' -benchtime 1x ./internal/rollout/

clean:
	$(GO) clean ./...

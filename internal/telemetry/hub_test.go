package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
)

// TestNilHubIsSafe calls every hook and accessor on a nil hub; any
// panic fails the test. This is the contract that lets rapl, mpi, cosim
// and friends carry their hooks unconditionally.
func TestNilHubIsSafe(t *testing.T) {
	var h *Hub
	h.CapWritten(1, "sim", 110, false, true)
	h.ThrottleEngaged(1, "sim", 180, 150, true)
	h.BudgetViolation(1, "sim", 120, 110, true)
	h.RendezvousWait("allgather", 0.01)
	h.MessageSent(64)
	h.SyncBarrier(1, 1, 1, 1, 1, 0, 0)
	h.IdleWait("ana", 0.5)
	h.NodePower("sim", 110)
	h.PolicyDecision(1, "seesaw", 1, 110, 110, 115, 105)
	h.JobBudget(1, 0, "job", 7040, 0.5)
	h.NodeKilled(1, 5, "ana", 20, 4, 3)
	h.NodeDegraded(1, 2, "sim", 10, 2)
	h.NodeRecovered(1, 2, "sim", 25)
	h.Emit(CapWritten{})
	if h.Events() != nil {
		t.Error("nil hub Events should be nil")
	}
	if h.Registry() != nil {
		t.Error("nil hub Registry should be nil")
	}
	if h.Dropped() != 0 || h.SinkErr() != nil || h.Close() != nil {
		t.Error("nil hub accessors should be zero")
	}
	var sb strings.Builder
	if err := h.WriteJSON(&sb); err != nil || !strings.Contains(sb.String(), "{}") {
		t.Errorf("nil hub WriteJSON = %q, %v", sb.String(), err)
	}
}

// TestDisabledHooksDoNotAllocate is the hot-path guarantee: with
// telemetry disabled (nil hub) a hook call is one pointer comparison and
// zero allocations.
func TestDisabledHooksDoNotAllocate(t *testing.T) {
	var h *Hub
	hooks := map[string]func(){
		"CapWritten":     func() { h.CapWritten(1, "sim", 110, false, true) },
		"RendezvousWait": func() { h.RendezvousWait("allgather", 0.01) },
		"MessageSent":    func() { h.MessageSent(64) },
		"SyncBarrier":    func() { h.SyncBarrier(1, 1, 1, 1, 1, 0, 0) },
		"IdleWait":       func() { h.IdleWait("ana", 0.5) },
		"NodePower":      func() { h.NodePower("sim", 110) },
		"PolicyDecision": func() { h.PolicyDecision(1, "seesaw", 1, 110, 110, 115, 105) },
		"JobBudget":      func() { h.JobBudget(1, 0, "job", 7040, 0.5) },
	}
	for name, fn := range hooks {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s on nil hub allocates %.1f times per call", name, allocs)
		}
	}
}

// TestRingWrap fills a small ring past capacity and checks Events
// returns the newest RingSize events, oldest first.
func TestRingWrap(t *testing.T) {
	h := New(Options{RingSize: 4})
	for i := 1; i <= 6; i++ {
		h.Emit(SyncBarrier{Step: i})
	}
	evs := h.Events()
	if len(evs) != 4 {
		t.Fatalf("Events len = %d, want 4", len(evs))
	}
	for i, e := range evs {
		sb, ok := e.(SyncBarrier)
		if !ok || sb.Step != i+3 {
			t.Errorf("event %d = %#v, want SyncBarrier step %d", i, e, i+3)
		}
	}
}

// TestSinkJSONL verifies the sink stream: one decodable line per event,
// in emission order, surviving a buffered writer via Close.
func TestSinkJSONL(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	h := New(Options{Sink: bw})
	h.CapWritten(1, "sim", 110, false, true)
	h.SyncBarrier(2, 1, 1.5, 1.5, 1.2, 0.2, 0.001)
	h.PolicyDecision(3, "seesaw", 1, 110, 110, 115, 105)
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("sink lines = %d, want 3: %q", len(lines), lines)
	}
	wantKinds := []string{"CapWritten", "SyncBarrier", "PolicyDecision"}
	for i, line := range lines {
		e, err := Decode([]byte(line))
		if err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if e.Kind() != wantKinds[i] {
			t.Errorf("line %d kind = %s, want %s", i, e.Kind(), wantKinds[i])
		}
	}
}

type failingWriter struct{ err error }

func (f failingWriter) Write([]byte) (int, error) { return 0, f.err }

func TestSinkErrorCountsDropped(t *testing.T) {
	h := New(Options{Sink: failingWriter{err: errors.New("disk full")}})
	h.Emit(SyncBarrier{Step: 1})
	h.Emit(SyncBarrier{Step: 2})
	if h.Dropped() == 0 {
		t.Error("expected dropped events after sink failure")
	}
	if h.SinkErr() == nil {
		t.Error("expected SinkErr after sink failure")
	}
	// The ring still has the events even though the sink failed.
	if len(h.Events()) != 2 {
		t.Errorf("ring events = %d, want 2", len(h.Events()))
	}
}

// TestHooksUpdateMetrics spot-checks that each hook feeds its family.
func TestHooksUpdateMetrics(t *testing.T) {
	h := New(Options{})
	h.CapWritten(1, "sim", 115, false, false)
	h.CapWritten(1, "sim", 117, true, false) // short write: counter only
	h.ThrottleEngaged(1, "sim", 180, 150, false)
	h.BudgetViolation(1, "sim", 120, 110, false)
	h.RendezvousWait("allgather", 0.01)
	h.MessageSent(64)
	h.MessageSent(100)
	h.SyncBarrier(1, 1, 1.5, 1.5, 1.2, 0.2, 0)
	h.IdleWait("ana", 0.3)
	h.NodePower("sim", 112)
	h.PolicyDecision(1, "seesaw", 1, 110, 110, 115, 105)
	h.PolicyDecision(2, "seesaw", 2, 115, 105, 115, 105)
	h.JobBudget(1, 0, "jobA", 7040, 0.5)

	var sb strings.Builder
	if err := h.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`seesaw_cap_writes_total{node="sim"} 2`,
		`seesaw_power_cap_watts{node="sim"} 115`, // short write must not move the gauge
		`seesaw_throttle_engaged_total{node="sim"} 1`,
		`seesaw_budget_violations_total{node="sim"} 1`,
		`seesaw_barrier_wait_seconds_count{op="allgather"} 1`,
		`seesaw_messages_total 2`,
		`seesaw_message_bytes_total 164`,
		`seesaw_sync_total 1`,
		`seesaw_interval_wall_seconds_count 1`,
		`seesaw_interval_slack 0.2`,
		`seesaw_idle_trough_seconds_count{partition="ana"} 1`,
		`seesaw_policy_decisions_total{policy="seesaw",direction="to-sim"} 1`,
		`seesaw_policy_decisions_total{policy="seesaw",direction="hold"} 1`,
		`seesaw_policy_shift_watts_count{policy="seesaw"} 2`,
		`seesaw_node_power_watts_count{partition="sim"} 1`,
		`seesaw_job_budget_watts{job="jobA"} 7040`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestHubConcurrentEmit exercises the hub from many goroutines; run
// with -race (the tier-1 gate does).
func TestHubConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	h := New(Options{RingSize: 64, Sink: &buf})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h.SyncBarrier(float64(i), i, 1, 1, 1, 0, 0)
				h.NodePower("sim", 110)
				h.CapWritten(float64(i), "sim", 110, false, g == 0)
			}
		}(g)
	}
	wg.Wait()
	if got := len(h.Events()); got != 64 {
		t.Errorf("ring should be full: %d events, want 64", got)
	}
	// Every sink line must decode.
	for i, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if _, err := Decode([]byte(line)); err != nil {
			t.Fatalf("sink line %d: %v", i, err)
		}
	}
}

// TestWriteJSON sanity-checks the /debug/telemetry payload shape.
func TestWriteJSON(t *testing.T) {
	h := New(Options{})
	h.SyncBarrier(1, 1, 1.5, 1.5, 1.2, 0.2, 0)
	var sb strings.Builder
	if err := h.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []json.RawMessage `json:"metrics"`
		Events  []json.RawMessage `json:"events"`
		Dropped uint64            `json:"dropped_events"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("WriteJSON not valid JSON: %v", err)
	}
	if len(doc.Metrics) == 0 {
		t.Error("WriteJSON has no metrics")
	}
	if len(doc.Events) != 1 {
		t.Errorf("WriteJSON events = %d, want 1", len(doc.Events))
	}
	if _, err := Decode(doc.Events[0]); err != nil {
		t.Errorf("embedded event not decodable: %v", err)
	}
}

// TestNodeLifecycleHooks: the fault hooks maintain the fault counter
// and the alive/degraded gauges, and emit their typed events.
func TestNodeLifecycleHooks(t *testing.T) {
	h := New(Options{})
	h.NodeDegraded(1, 2, "sim", 10, 2)
	h.NodeKilled(2, 5, "ana", 20, 4, 3)
	h.NodeRecovered(3, 2, "sim", 25)

	var sb strings.Builder
	if err := h.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`seesaw_node_faults_total{kind="kill",partition="ana"} 1`,
		`seesaw_node_faults_total{kind="slow",partition="sim"} 1`,
		`seesaw_node_faults_total{kind="recover",partition="sim"} 1`,
		`seesaw_alive_nodes{partition="sim"} 4`,
		`seesaw_alive_nodes{partition="ana"} 3`,
		`seesaw_degraded_nodes{partition="sim"} 0`, // degraded then recovered
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	var kinds []string
	for _, e := range h.Events() {
		kinds = append(kinds, e.Kind())
	}
	want := []string{"NodeDegraded", "NodeKilled", "NodeRecovered"}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("event %d = %s, want %s", i, kinds[i], want[i])
		}
	}
}

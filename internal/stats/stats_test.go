package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Median mutated its input")
	}
}

func TestMedianBounds(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return Median(xs) == 0
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		m := Median(xs)
		return m >= Min(xs) && m <= Max(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("Min/Max of empty should be 0")
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Error("StdDev of single value should be 0")
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	want := 2.138089935299395 // sample stddev
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {25, 2},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile of empty should be 0")
	}
}

func TestVariabilityPct(t *testing.T) {
	if VariabilityPct([]float64{100}) != 0 {
		t.Error("single sample variability should be 0")
	}
	got := VariabilityPct([]float64{99, 100, 101})
	if math.Abs(got-2.0) > 1e-12 {
		t.Errorf("VariabilityPct = %v, want 2.0", got)
	}
	if VariabilityPct([]float64{0, 0}) != 0 {
		t.Error("zero-mean variability should be 0")
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Initialized() {
		t.Error("fresh EWMA should not be initialized")
	}
	if got := e.Add(10); got != 10 {
		t.Errorf("first Add = %v, want 10", got)
	}
	if got := e.Add(20); got != 15 {
		t.Errorf("second Add = %v, want 15", got)
	}
	if e.Value() != 15 {
		t.Errorf("Value = %v", e.Value())
	}
}

func TestEWMAPanicsOnBadWeight(t *testing.T) {
	for _, w := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEWMA(%v) should panic", w)
				}
			}()
			NewEWMA(w)
		}()
	}
}

func TestBlend(t *testing.T) {
	if got := Blend(10, 20, 0.25); got != 17.5 {
		t.Errorf("Blend = %v, want 17.5", got)
	}
	// Blend with weight 1 returns x; weight 0 returns prev.
	if Blend(3, 9, 1) != 3 || Blend(3, 9, 0) != 9 {
		t.Error("Blend endpoints wrong")
	}
}

func TestBlendConvexity(t *testing.T) {
	f := func(x, prev, w float64) bool {
		if math.IsNaN(x) || math.IsNaN(prev) || math.IsInf(x, 0) || math.IsInf(prev, 0) {
			return true
		}
		ww := math.Abs(math.Mod(w, 1))
		b := Blend(x, prev, ww)
		lo, hi := math.Min(x, prev), math.Max(x, prev)
		return b >= lo-1e-9*math.Abs(lo) && b <= hi+1e-9*math.Abs(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRollingWindow(t *testing.T) {
	r := NewRollingWindow(3)
	if r.Full() || r.Len() != 0 || r.Mean() != 0 {
		t.Error("fresh window state wrong")
	}
	r.Add(1)
	r.Add(2)
	if r.Mean() != 1.5 || r.Full() {
		t.Errorf("partial window mean = %v", r.Mean())
	}
	r.Add(3)
	if !r.Full() || r.Mean() != 2 {
		t.Errorf("full window mean = %v", r.Mean())
	}
	r.Add(10) // evicts 1
	if got := r.Mean(); got != 5 {
		t.Errorf("after eviction mean = %v, want 5", got)
	}
	r.Reset()
	if r.Len() != 0 || r.Mean() != 0 {
		t.Error("reset window should be empty")
	}
}

func TestRollingWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRollingWindow(0) should panic")
		}
	}()
	NewRollingWindow(0)
}

func TestPercentileMatchesSortedIndex(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		c := append([]float64(nil), xs...)
		sort.Float64s(c)
		return Percentile(xs, 0) == c[0] && Percentile(xs, 100) == c[len(c)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

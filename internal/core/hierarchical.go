// Hierarchical power allocation: the paper's first future-work item
// ("power should be allocated through a hierarchical decision-making
// process that breaks down SeeSAw's power allocation to the individual
// compute units", Section VIII).
package core

import (
	"fmt"

	"seesaw/internal/units"
)

// HierarchicalConfig parameterizes the two-level allocator.
type HierarchicalConfig struct {
	// Constraints carry the global budget and per-node cap range.
	Constraints Constraints
	// Window is the partition-level SeeSAw window w.
	Window int
	// IntraStep bounds how many Watts the intra-partition level may
	// move between two nodes of the same partition per allocation.
	IntraStep units.Watts
	// IntraSlack is the relative time difference between a node and its
	// partition's fastest node below which no intra-partition shifting
	// happens (guards against noise-chasing).
	IntraSlack float64
}

// DefaultHierarchicalConfig returns conservative intra-partition
// balancing on top of a standard SeeSAw configuration.
func DefaultHierarchicalConfig(c Constraints) HierarchicalConfig {
	return HierarchicalConfig{
		Constraints: c,
		Window:      1,
		IntraStep:   2,
		IntraSlack:  0.01,
	}
}

// Hierarchical composes SeeSAw's partition-level split with a second,
// intra-partition level that addresses node heterogeneity: within each
// partition, nodes that consistently finish earlier than their siblings
// donate a bounded amount of power to the slower ones, keeping the
// partition totals exactly as SeeSAw assigned them. This targets the
// heterogeneity that uniform per-partition caps cannot fix (node speed
// and power-efficiency skew — the job-to-job effects of Table I).
type Hierarchical struct {
	cfg    HierarchicalConfig
	seesaw *SeeSAw

	// current per-node offsets from the partition-uniform cap; they sum
	// to zero within each partition.
	offsets []units.Watts
}

// NewHierarchical returns a two-level allocator.
func NewHierarchical(cfg HierarchicalConfig) (*Hierarchical, error) {
	if cfg.IntraStep <= 0 {
		return nil, fmt.Errorf("core: hierarchical intra step must be positive, got %v", cfg.IntraStep)
	}
	if cfg.IntraSlack < 0 || cfg.IntraSlack >= 1 {
		return nil, fmt.Errorf("core: hierarchical intra slack %v outside [0,1)", cfg.IntraSlack)
	}
	ss, err := NewSeeSAw(SeeSAwConfig{Constraints: cfg.Constraints, Window: cfg.Window})
	if err != nil {
		return nil, err
	}
	return &Hierarchical{cfg: cfg, seesaw: ss}, nil
}

// MustNewHierarchical is NewHierarchical that panics on config errors.
func MustNewHierarchical(cfg HierarchicalConfig) *Hierarchical {
	h, err := NewHierarchical(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// Name implements Policy.
func (*Hierarchical) Name() string { return "seesaw-hierarchical" }

// Allocate implements Policy.
func (h *Hierarchical) Allocate(step int, nodes []NodeMeasure) []units.Watts {
	if h.offsets == nil {
		h.offsets = make([]units.Watts, len(nodes))
	}
	if len(h.offsets) != len(nodes) {
		// Node set changed mid-run: reset the intra level.
		h.offsets = make([]units.Watts, len(nodes))
	}
	// A dead node's offset is retired: its partition share re-enters
	// through level 1's live-membership division, so holding its
	// zero-sum IOU would skew the survivors.
	for i, n := range nodes {
		if n.Health == Dead {
			h.offsets[i] = 0
		}
	}

	// Level 1: the partition split.
	caps := h.seesaw.Allocate(step, nodes)
	if caps == nil {
		// No partition-level change this step; rebuild the current
		// uniform caps from the measurements so level 2 can still act.
		caps = make([]units.Watts, len(nodes))
		for i, n := range nodes {
			caps[i] = n.Cap - h.offsets[i]
		}
	}

	// Level 2: zero-sum intra-partition balancing. Within each
	// partition, the node slowest relative to the partition's fastest
	// gains IntraStep from the fastest (bounded by the hardware range),
	// tracked as offsets so partition totals stay what level 1 chose.
	h.balancePartition(RoleSimulation, nodes)
	h.balancePartition(RoleAnalysis, nodes)

	out := make([]units.Watts, len(nodes))
	for i, n := range nodes {
		if n.Health == Dead {
			continue // dead nodes keep a zero cap
		}
		out[i] = units.ClampWatts(caps[i]+h.offsets[i], h.cfg.Constraints.MinCap, h.cfg.Constraints.MaxCap)
	}
	return out
}

// balancePartition moves IntraStep from the partition's fastest node to
// its slowest when their busy times differ by more than IntraSlack.
func (h *Hierarchical) balancePartition(role Role, nodes []NodeMeasure) {
	fast, slow := -1, -1
	for i, n := range nodes {
		if n.Role != role || n.Health == Dead || n.BusyTime <= 0 {
			continue
		}
		if fast < 0 || n.BusyTime < nodes[fast].BusyTime {
			fast = i
		}
		if slow < 0 || n.BusyTime > nodes[slow].BusyTime {
			slow = i
		}
	}
	if fast < 0 || slow < 0 || fast == slow {
		return
	}
	gap := float64(nodes[slow].BusyTime-nodes[fast].BusyTime) / float64(nodes[slow].BusyTime)
	if gap < h.cfg.IntraSlack {
		return
	}
	// Bound the offsets so a node never drifts more than the range the
	// hardware supports relative to the partition cap.
	h.offsets[fast] -= h.cfg.IntraStep
	h.offsets[slow] += h.cfg.IntraStep
	limit := (h.cfg.Constraints.MaxCap - h.cfg.Constraints.MinCap) / 4
	h.offsets[fast] = units.ClampWatts(h.offsets[fast], -limit, limit)
	h.offsets[slow] = units.ClampWatts(h.offsets[slow], -limit, limit)
}

// Offsets exposes the current intra-partition offsets (for tests and the
// ablation harness).
func (h *Hierarchical) Offsets() []units.Watts {
	return append([]units.Watts(nil), h.offsets...)
}

package mpi

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestRunContextCompletesWithoutCancel: the context path is inert when
// never cancelled.
func TestRunContextCompletesWithoutCancel(t *testing.T) {
	err := RunContext(context.Background(), 4, DefaultCost(), nil, func(r *Rank) {
		r.World().Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunContextPreCancelled: an already-dead context never spawns rank
// work.
func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := RunContext(ctx, 2, DefaultCost(), nil, func(r *Rank) { ran = true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("body ran under a pre-cancelled context")
	}
}

// TestCancelUnblocksRecv: a rank blocked in Recv with no sender must
// unwind when the context is cancelled, without being reported as a
// rank panic.
func TestCancelUnblocksRecv(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	blocked := make(chan struct{})
	go func() {
		<-blocked
		cancel()
	}()
	errc := make(chan error, 1)
	go func() {
		errc <- RunContext(ctx, 2, DefaultCost(), nil, func(r *Rank) {
			if r.WorldRank() == 1 {
				close(blocked)
				r.Recv(0, 7) // no matching send ever arrives
				t.Error("Recv returned after cancellation")
			}
			// Rank 0 exits immediately.
		})
	}()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunContext did not return after cancel: Recv leaked")
	}
}

// TestCancelUnblocksCollective: ranks parked at a barrier that will
// never complete (one member refuses to arrive) unwind on cancellation.
func TestCancelUnblocksCollective(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	hold := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		errc <- RunContext(ctx, 4, DefaultCost(), nil, func(r *Rank) {
			if r.WorldRank() == 0 {
				<-hold // skip the barrier until after cancellation
				return
			}
			r.World().Barrier()
			t.Errorf("rank %d passed a barrier missing a member", r.WorldRank())
		})
	}()
	time.Sleep(20 * time.Millisecond) // let ranks 1..3 park in the barrier
	cancel()
	close(hold)
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunContext did not return: collective waiters leaked")
	}
}

// TestCancelUnblocksSubcommunicator: waiters blocked on a Split-created
// communicator (registered after the runtime started) are woken too.
func TestCancelUnblocksSubcommunicator(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	parked := make(chan struct{}, 3)
	go func() {
		errc <- RunContext(ctx, 4, DefaultCost(), nil, func(r *Rank) {
			sub := r.World().Split(r.WorldRank()%2, 0)
			if r.WorldRank() == 0 {
				return // starve sub-communicator {0, 2}
			}
			parked <- struct{}{}
			sub.Barrier() // rank 2 waits forever; ranks 1,3 complete
		})
	}()
	for i := 0; i < 3; i++ {
		<-parked
	}
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunContext did not return: sub-communicator waiter leaked")
	}
}

// TestFailUnblocksPeers: a rank dying via Fail takes the job down — the
// peers parked at a collective it can no longer join unwind promptly,
// and RunContext surfaces the failing rank's error.
func TestFailUnblocksPeers(t *testing.T) {
	boom := errors.New("node 2 killed")
	errc := make(chan error, 1)
	go func() {
		errc <- Run(4, DefaultCost(), func(r *Rank) {
			if r.WorldRank() == 2 {
				time.Sleep(20 * time.Millisecond) // let peers park first
				r.Fail(boom)
				t.Error("Fail returned")
			}
			r.World().Barrier()
			t.Errorf("rank %d passed a barrier missing a member", r.WorldRank())
		})
	}()
	select {
	case err := <-errc:
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v, want %v", err, boom)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunContext did not return after Fail: ranks leaked")
	}
}

// TestFailNilError still aborts, with a default error naming the rank.
func TestFailNilError(t *testing.T) {
	err := Run(2, DefaultCost(), func(r *Rank) {
		if r.WorldRank() == 1 {
			r.Fail(nil)
		}
		r.World().Barrier()
	})
	if err == nil || !strings.Contains(err.Error(), "rank 1 failed") {
		t.Fatalf("err = %v, want default rank-1 failure", err)
	}
}

// TestRankPanicBeatsCancellation: a genuine rank panic is reported even
// when the context is also cancelled during teardown.
func TestRankPanicBeatsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() {
		errc <- RunContext(ctx, 2, DefaultCost(), nil, func(r *Rank) {
			if r.WorldRank() == 0 {
				panic("genuine failure")
			}
			r.Recv(0, 1) // blocks until cancellation
		})
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err == nil || errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want the rank 0 panic", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunContext did not return")
	}
}
